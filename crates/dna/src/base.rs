//! 2-bit nucleotide encoding.
//!
//! The whole workspace uses the canonical mapping `A=0, C=1, G=2, T=3`. With this
//! mapping the complement of a base code is simply `3 - code` (equivalently
//! `code ^ 0b11`), which keeps reverse-complement computation branch-free.

/// A single DNA nucleotide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

impl Base {
    /// All bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Construct a base from a 2-bit code. Only the two low bits are used.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Watson-Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(self.code() ^ 0b11)
    }

    /// ASCII representation (upper-case).
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Parse an ASCII nucleotide (case-insensitive). Ambiguous IUPAC codes such as `N`
    /// return `None`; callers decide how to handle them (the read simulators never emit
    /// them, the FASTA parser maps them deterministically).
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }
}

/// Encode an ASCII nucleotide to its 2-bit code, mapping unknown characters to `A`.
///
/// Real pipelines either drop k-mers containing ambiguous bases or replace them; the
/// paper's datasets are pre-cleaned, so a deterministic replacement keeps parsing simple
/// and branch-predictable.
#[inline]
pub fn encode_base(c: u8) -> u8 {
    match c {
        b'A' | b'a' => 0,
        b'C' | b'c' => 1,
        b'G' | b'g' => 2,
        b'T' | b't' => 3,
        _ => 0,
    }
}

/// Decode a 2-bit code to its ASCII nucleotide.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    match code & 0b11 {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        _ => b'T',
    }
}

/// Complement of a 2-bit base code.
#[inline]
pub fn complement_code(code: u8) -> u8 {
    (code & 0b11) ^ 0b11
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(encode_base(b.to_ascii()), b.code());
            assert_eq!(decode_base(b.code()), b.to_ascii());
        }
    }

    #[test]
    fn complements_are_involutions() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_eq!(complement_code(complement_code(b.code())), b.code());
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn lowercase_and_ambiguous_ascii() {
        assert_eq!(Base::from_ascii(b'a'), Some(Base::A));
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(encode_base(b'N'), 0);
        assert_eq!(encode_base(b'g'), 2);
    }

    #[test]
    fn code_ordering_matches_lexicographic_ordering() {
        // A < C < G < T both as characters and as codes.
        let mut by_code = Base::ALL;
        by_code.sort_by_key(|b| b.code());
        let mut by_ascii = Base::ALL;
        by_ascii.sort_by_key(|b| b.to_ascii());
        assert_eq!(by_code, by_ascii);
    }
}
