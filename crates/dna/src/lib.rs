//! DNA sequence and k-mer substrate for the HySortK reproduction.
//!
//! This crate provides the representations the rest of the workspace is built on:
//!
//! * [`base`] — 2-bit nucleotide encoding (`A=0, C=1, G=2, T=3`), complements and
//!   ASCII conversion.
//! * [`kmer::Kmer`] — a fixed-length k-mer packed 2 bits per base into `[u64; W]`
//!   words, ordered so that integer comparison equals lexicographic comparison.
//! * [`sequence::DnaSeq`] — a 2-bit packed DNA sequence (a *read*), with k-mer
//!   extraction iterators.
//! * [`fasta`] — a minimal FASTA reader/writer (whole-file, in-memory reference).
//! * [`io`] — chunked, rank-sharded streaming FASTA/FASTQ ingestion.
//! * [`readset::ReadSet`] — a collection of reads with identifiers, plus the greedy
//!   partitioning across ranks used by the counting pipelines.
//! * [`extension::Extension`] — the per-k-mer provenance record (`read_id`,
//!   `pos_in_read`) the paper calls *extension information*.
//!
//! Everything here is deliberately dependency-light and allocation-conscious: k-mers are
//! `Copy` values, sequences are packed, and iteration over k-mers is rolling (O(1) per
//! k-mer, not O(k)).

pub mod base;
pub mod extension;
pub mod fasta;
pub mod io;
pub mod kmer;
pub mod readset;
pub mod sequence;
pub mod simd;

pub use base::{complement_code, decode_base, encode_base, Base};
pub use extension::Extension;
pub use io::{IngestOptions, InputFile, SeqFormat, ShardReader};
pub use kmer::{Kmer, Kmer1, Kmer2, KmerCode};
pub use readset::{Read, ReadSet};
pub use sequence::DnaSeq;
pub use simd::SimdLevel;

/// Maximum k supported with a single 64-bit word (2 bits per base).
pub const MAX_K_ONE_WORD: usize = 32;
/// Maximum k supported by the two-word k-mer used for long k (e.g. k = 55).
pub const MAX_K_TWO_WORDS: usize = 64;
