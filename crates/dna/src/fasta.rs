//! Minimal FASTA reader/writer.
//!
//! HySortK takes FASTA files as input (paper §4). This module is the whole-file,
//! in-memory **reference** entry point: it keeps the historical map-unknown-bases-to-`A`
//! policy and gives the integration tests an end-to-end text round trip. Real file
//! ingestion goes through [`crate::io`], which streams fixed-size blocks, shards the
//! byte range across ranks, supports FASTQ, and *splits* reads at ambiguous bases
//! instead of mapping them.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::readset::{Read, ReadSet};

/// Parse FASTA text (possibly multi-line records) into a [`ReadSet`].
///
/// Records consist of a header line starting with `>` followed by one or more sequence
/// lines. Blank lines are ignored. Characters other than `ACGTacgt` are mapped to `A`,
/// matching the policy documented in [`crate::base::encode_base`].
pub fn parse_fasta_str(text: &str) -> ReadSet {
    parse_fasta_lines(text.lines().map(|l| Ok::<_, io::Error>(l.to_string())))
        .expect("string parsing cannot fail")
}

/// Parse a FASTA file from disk.
pub fn read_fasta_file(path: impl AsRef<Path>) -> io::Result<ReadSet> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    parse_fasta_lines(reader.lines())
}

fn parse_fasta_lines<I>(lines: I) -> io::Result<ReadSet>
where
    I: Iterator<Item = io::Result<String>>,
{
    let mut rs = ReadSet::new();
    let mut name: Option<String> = None;
    let mut seq: Vec<u8> = Vec::new();

    let flush = |name: &mut Option<String>, seq: &mut Vec<u8>, rs: &mut ReadSet| {
        // Header-only records (`>name` with no sequence) are skipped: a zero-length
        // read carries no k-mers and would only make stage 1 see `n == 0` inputs.
        if let Some(n) = name.take() {
            if !seq.is_empty() {
                rs.push(Read::from_ascii(0, n, seq));
            }
        }
        seq.clear();
    };

    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            flush(&mut name, &mut seq, &mut rs);
            name = Some(header.trim().to_string());
        } else {
            if name.is_none() {
                // Sequence data before any header: tolerate it with a synthetic name,
                // as several common toolchains do.
                name = Some(format!("unnamed{}", rs.len()));
            }
            seq.extend_from_slice(trimmed.as_bytes());
        }
    }
    flush(&mut name, &mut seq, &mut rs);
    Ok(rs)
}

/// Serialise a [`ReadSet`] as FASTA text with the given line width.
pub fn to_fasta_string(reads: &ReadSet, line_width: usize) -> String {
    let width = line_width.max(1);
    let mut out = String::with_capacity(reads.ascii_bytes());
    for r in reads.iter() {
        out.push('>');
        out.push_str(&r.name);
        out.push('\n');
        let ascii = r.seq.to_ascii();
        for chunk in ascii.chunks(width) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII DNA"));
            out.push('\n');
        }
    }
    out
}

/// Write a [`ReadSet`] to a FASTA file.
pub fn write_fasta_file(
    path: impl AsRef<Path>,
    reads: &ReadSet,
    line_width: usize,
) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(to_fasta_string(reads, line_width).as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiline_records() {
        let text = ">read one\nACGT\nACGT\n\n>read two extra info\nTTTT\n";
        let rs = parse_fasta_str(text);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.reads()[0].name, "read one");
        assert_eq!(rs.reads()[0].seq.to_ascii(), b"ACGTACGT".to_vec());
        assert_eq!(rs.reads()[1].name, "read two extra info");
        assert_eq!(rs.reads()[1].seq.to_ascii(), b"TTTT".to_vec());
    }

    #[test]
    fn tolerates_headerless_sequence() {
        let rs = parse_fasta_str("ACGTACGT\n>named\nTTTT\n");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.reads()[0].seq.len(), 8);
    }

    #[test]
    fn round_trips_through_text() {
        let rs = ReadSet::from_ascii_reads(&[
            b"ACGTACGTACGTACGTACGTACGT".as_slice(),
            b"TTTTGGGGCCCCAAAA".as_slice(),
        ]);
        let text = to_fasta_string(&rs, 10);
        let parsed = parse_fasta_str(&text);
        assert_eq!(parsed.len(), rs.len());
        for (a, b) in parsed.iter().zip(rs.iter()) {
            assert_eq!(a.seq, b.seq);
        }
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hysortk_fasta_test_{}.fa", std::process::id()));
        let rs = ReadSet::from_ascii_reads(&[b"ACGTACGTGGCCTTAA".as_slice()]);
        write_fasta_file(&path, &rs, 80).unwrap();
        let parsed = read_fasta_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.reads()[0].seq, rs.reads()[0].seq);
    }

    #[test]
    fn header_only_records_are_skipped() {
        // Regression: a `>name` header with no sequence used to push a zero-length
        // read into the set.
        let rs = parse_fasta_str(">empty\n>full\nACGT\n>trailing empty\n");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.reads()[0].name, "full");
        assert!(rs.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn ambiguous_bases_are_mapped_not_dropped() {
        let rs = parse_fasta_str(">r\nACGNNACG\n");
        assert_eq!(rs.reads()[0].seq.len(), 8);
        assert_eq!(rs.reads()[0].seq.to_ascii(), b"ACGAAACG".to_vec());
    }
}
