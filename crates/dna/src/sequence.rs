//! Packed DNA sequences (reads) and rolling k-mer extraction.

use crate::base::{complement_code, decode_base, encode_base};
use crate::kmer::KmerCode;

/// A DNA sequence packed 2 bits per base.
///
/// Sequences are append-only; the counting pipelines only ever parse them forwards.
/// Bases are stored 32 per `u64` word in *little* position order (base `i` lives in bits
/// `2*(i % 32)` of word `i / 32`), which makes `push`/`get` cheap. Ordering of whole
/// sequences is never required, unlike for [`crate::kmer::Kmer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DnaSeq {
    words: Vec<u64>,
    len: usize,
}

impl DnaSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        DnaSeq {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Empty sequence with room for `n` bases.
    pub fn with_capacity(n: usize) -> Self {
        DnaSeq {
            words: Vec::with_capacity(n.div_ceil(32)),
            len: 0,
        }
    }

    /// Parse from ASCII (unknown characters become `A`). Packs 32 bases per iteration
    /// through the dispatched SIMD kernel (see [`crate::simd`]); byte-identical to
    /// [`DnaSeq::from_ascii_scalar`].
    pub fn from_ascii(seq: &[u8]) -> Self {
        let mut s = Self::with_capacity(seq.len());
        s.extend_from_ascii(seq);
        s
    }

    /// The scalar reference parser the property tests (and the `pack_ascii` criterion
    /// bench) pin [`DnaSeq::from_ascii`] against: one `encode_base` per character.
    pub fn from_ascii_scalar(seq: &[u8]) -> Self {
        let mut s = Self::with_capacity(seq.len());
        for &c in seq {
            s.push_code(encode_base(c));
        }
        s
    }

    /// Append ASCII bases (unknown characters become `A`), 32 at a time: each full
    /// chunk is packed to one word by the active SIMD kernel and spliced in with two
    /// shifts, so appending is O(len/32) word operations at any alignment.
    pub fn extend_from_ascii(&mut self, seq: &[u8]) {
        self.words.reserve((self.len % 32 + seq.len()).div_ceil(32));
        let mut chunks = seq.chunks_exact(32);
        for chunk in &mut chunks {
            let block: &[u8; 32] = chunk.try_into().expect("exact 32-byte chunk");
            self.append_codes_word(crate::simd::pack_block32(block), 32);
        }
        for &c in chunks.remainder() {
            self.push_code(encode_base(c));
        }
    }

    /// Append `count` (1..=32) base codes packed little-position-order in `w` (base `j`
    /// of the group at bits `2*j`; bits at and above `2*count` must be zero).
    #[inline]
    fn append_codes_word(&mut self, w: u64, count: usize) {
        debug_assert!((1..=32).contains(&count));
        debug_assert!(count == 32 || w >> (2 * count) == 0);
        let r = self.len % 32;
        if r == 0 {
            self.words.push(w);
        } else {
            *self.words.last_mut().expect("len % 32 != 0 implies a word") |= w << (2 * r);
            if r + count > 32 {
                self.words.push(w >> (2 * (32 - r)));
            }
        }
        self.len += count;
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one 2-bit base code.
    #[inline]
    pub fn push_code(&mut self, code: u8) {
        let word = self.len / 32;
        let shift = 2 * (self.len % 32);
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= u64::from(code & 0b11) << shift;
        self.len += 1;
    }

    /// The 2-bit code of base `i`.
    #[inline]
    pub fn get_code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        let word = i / 32;
        let shift = 2 * (i % 32);
        ((self.words[word] >> shift) & 0b11) as u8
    }

    /// The 2-bit code of base `i` without the bounds check — the primitive of the
    /// streaming parse loops, whose index is provably in range.
    ///
    /// # Safety
    ///
    /// `i` must be less than [`DnaSeq::len`].
    #[inline]
    pub unsafe fn get_code_unchecked(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        let word = self.words.get_unchecked(i / 32);
        ((word >> (2 * (i % 32))) & 0b11) as u8
    }

    /// The backing packed words (base `i` lives in bits `2*(i % 32)` of word `i / 32`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Copy bases `start..start + len` into a new sequence, moving whole packed words
    /// (32 bases per shift/OR, four words per AVX2 iteration) instead of one base at a
    /// time.
    pub fn subseq(&self, start: usize, len: usize) -> DnaSeq {
        assert!(start + len <= self.len, "subrange out of bounds");
        let nwords = len.div_ceil(32);
        let mut words = vec![0u64; nwords];
        if nwords > 0 {
            let shift = (2 * (start % 32)) as u32;
            crate::simd::shift_word_stream(&self.words[start / 32..], shift, &mut words);
        }
        let stray = len % 32;
        if stray != 0 {
            let last = words.last_mut().expect("len > 0 implies a word");
            *last &= (1u64 << (2 * stray)) - 1;
        }
        DnaSeq { words, len }
    }

    /// Append the wire encoding of bases `start..start + len` to `out`: 4 bases per
    /// byte, base `j` of the range at bits `2*(j % 4)` of byte `j / 4` — the layout the
    /// exchange stage ships. Bytes are produced 8 at a time (32 bases per shift/OR);
    /// stray high bits of the final byte are zeroed.
    pub fn append_packed_range(&self, start: usize, len: usize, out: &mut Vec<u8>) {
        assert!(start + len <= self.len, "subrange out of bounds");
        if len == 0 {
            return;
        }
        let nbytes = len.div_ceil(4);
        out.reserve(nbytes);
        let shift = (2 * (start % 32)) as u32;
        let words = &self.words[start / 32..];
        let nwords = nbytes.div_ceil(8);
        // Batch the shifted word stream through a stack buffer: AVX2 produces four
        // words (128 bases) per iteration inside `shift_word_stream`.
        let mut buf = [0u64; 16];
        let mut produced = 0usize;
        let mut w0 = 0usize;
        while w0 < nwords {
            let take = (nwords - w0).min(buf.len());
            crate::simd::shift_word_stream(&words[w0..], shift, &mut buf[..take]);
            for word in &buf[..take] {
                let bytes = word.to_le_bytes();
                let emit = (nbytes - produced).min(8);
                out.extend_from_slice(&bytes[..emit]);
                produced += emit;
            }
            w0 += take;
        }
        let stray = len % 4;
        if stray != 0 {
            let last = out.last_mut().expect("len > 0 implies a byte");
            *last &= (1u8 << (2 * stray)) - 1;
        }
    }

    /// Iterate over the 2-bit base codes.
    pub fn codes(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.get_code(i))
    }

    /// Render as an ASCII string.
    pub fn to_ascii(&self) -> Vec<u8> {
        self.codes().map(decode_base).collect()
    }

    /// Reverse complement of the whole sequence.
    pub fn reverse_complement(&self) -> Self {
        let mut rc = Self::with_capacity(self.len);
        for i in (0..self.len).rev() {
            rc.push_code(complement_code(self.get_code(i)));
        }
        rc
    }

    /// Number of k-mers in this sequence (0 if shorter than k).
    #[inline]
    pub fn num_kmers(&self, k: usize) -> usize {
        if self.len < k {
            0
        } else {
            self.len - k + 1
        }
    }

    /// Rolling iterator over all k-mers (in forward orientation).
    pub fn kmers<K: KmerCode>(&self, k: usize) -> KmerIter<'_, K> {
        assert!(
            k >= 1 && k <= K::max_k(),
            "k = {k} out of range for this k-mer width"
        );
        KmerIter {
            seq: self,
            k,
            next_base: 0,
            current: K::zero(),
        }
    }

    /// Rolling iterator over canonical k-mers.
    pub fn canonical_kmers<K: KmerCode>(&self, k: usize) -> impl Iterator<Item = K> + '_ {
        self.kmers::<K>(k).map(move |km| km.canonical(k))
    }

    /// Approximate heap memory used by the packed representation, in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Rolling k-mer iterator produced by [`DnaSeq::kmers`].
pub struct KmerIter<'a, K: KmerCode> {
    seq: &'a DnaSeq,
    k: usize,
    next_base: usize,
    current: K,
}

impl<K: KmerCode> Iterator for KmerIter<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        // Warm up the window until it holds k bases, then emit one k-mer per base.
        while self.next_base < self.seq.len() {
            let code = self.seq.get_code(self.next_base);
            self.current = self.current.push_base(self.k, code);
            self.next_base += 1;
            if self.next_base >= self.k {
                return Some(self.current);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.seq.len() < self.k {
            0
        } else {
            self.seq.len() + 1 - self.k.max(self.next_base + 1) + 1
        };
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::Kmer1;

    #[test]
    fn ascii_round_trip() {
        let s = b"ACGTTGCAACGTGGGTTTAAACCC";
        let seq = DnaSeq::from_ascii(s);
        assert_eq!(seq.len(), s.len());
        assert_eq!(seq.to_ascii(), s.to_vec());
    }

    #[test]
    fn push_and_get_across_word_boundaries() {
        let long: Vec<u8> = (0..100).map(|i| b"ACGT"[(i * 7 + 3) % 4]).collect();
        let seq = DnaSeq::from_ascii(&long);
        for (i, &c) in long.iter().enumerate() {
            assert_eq!(decode_base(seq.get_code(i)), c);
        }
    }

    #[test]
    fn reverse_complement_involution() {
        let seq = DnaSeq::from_ascii(b"ACGTTGCAACGTGGGTTTAAACCCTAGCAT");
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
        assert_eq!(
            DnaSeq::from_ascii(b"ACGT").reverse_complement().to_ascii(),
            b"ACGT".to_vec()
        );
        assert_eq!(
            DnaSeq::from_ascii(b"AAACC").reverse_complement().to_ascii(),
            b"GGTTT".to_vec()
        );
    }

    #[test]
    fn kmer_iteration_matches_slices() {
        let s = b"ACGTTGCAACGTGGGTTTAAACCC";
        let seq = DnaSeq::from_ascii(s);
        let k = 7;
        let kmers: Vec<Kmer1> = seq.kmers(k).collect();
        assert_eq!(kmers.len(), s.len() - k + 1);
        for (i, km) in kmers.iter().enumerate() {
            assert_eq!(km.to_string_k(k), String::from_utf8_lossy(&s[i..i + k]));
        }
    }

    #[test]
    fn short_sequences_yield_no_kmers() {
        let seq = DnaSeq::from_ascii(b"ACG");
        assert_eq!(seq.num_kmers(5), 0);
        assert_eq!(seq.kmers::<Kmer1>(5).count(), 0);
        assert_eq!(seq.num_kmers(3), 1);
    }

    #[test]
    fn canonical_kmers_are_strand_invariant() {
        let s = b"ACGTTGCAACGTGGGTTTAAACCCTAG";
        let k = 9;
        let fwd = DnaSeq::from_ascii(s);
        let rev = fwd.reverse_complement();
        let mut a: Vec<Kmer1> = fwd.canonical_kmers(k).collect();
        let mut b: Vec<Kmer1> = rev.canonical_kmers(k).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn packed_memory_is_quarter_of_ascii() {
        let seq = DnaSeq::from_ascii(&vec![b'A'; 1024]);
        assert_eq!(seq.packed_bytes(), 1024 / 4);
    }

    fn patterned(len: usize) -> DnaSeq {
        let bases: Vec<u8> = (0..len).map(|i| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
        DnaSeq::from_ascii(&bases)
    }

    #[test]
    fn subseq_matches_per_base_copy_at_every_alignment() {
        let seq = patterned(200);
        for start in [0, 1, 31, 32, 33, 63, 64, 97] {
            for len in [0, 1, 3, 31, 32, 33, 64, 100] {
                if start + len > seq.len() {
                    continue;
                }
                let fast = seq.subseq(start, len);
                let mut slow = DnaSeq::with_capacity(len);
                for i in start..start + len {
                    slow.push_code(seq.get_code(i));
                }
                assert_eq!(fast, slow, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn append_packed_range_matches_per_base_packing() {
        let seq = patterned(150);
        for start in [0, 2, 30, 32, 45, 64] {
            for len in [0, 1, 4, 5, 29, 32, 63, 80] {
                if start + len > seq.len() {
                    continue;
                }
                let mut fast = vec![0xAAu8]; // pre-existing bytes must survive
                seq.append_packed_range(start, len, &mut fast);
                let mut slow = vec![0xAAu8];
                let mut byte = 0u8;
                let mut filled = 0usize;
                for i in start..start + len {
                    byte |= seq.get_code(i) << (2 * filled);
                    filled += 1;
                    if filled == 4 {
                        slow.push(byte);
                        byte = 0;
                        filled = 0;
                    }
                }
                if filled > 0 {
                    slow.push(byte);
                }
                assert_eq!(fast, slow, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn simd_from_ascii_matches_scalar_for_all_lengths_and_bytes() {
        // Lengths 0..=128 (4× the AVX2 lane width) over mixed-case bases with
        // ambiguity characters sprinkled in — the unknown→A policy must be identical.
        for len in 0..=128usize {
            let ascii: Vec<u8> = (0..len)
                .map(|i| b"acgtACGTNnXum-."[(i * 5 + len) % 15])
                .collect();
            assert_eq!(
                DnaSeq::from_ascii(&ascii),
                DnaSeq::from_ascii_scalar(&ascii),
                "len={len}"
            );
        }
        // Every byte value at least once.
        let all: Vec<u8> = (0u8..=255).collect();
        assert_eq!(DnaSeq::from_ascii(&all), DnaSeq::from_ascii_scalar(&all));
    }

    #[test]
    fn extend_from_ascii_matches_scalar_pushes_at_every_alignment() {
        // Start from every residue 0..=33 of a prefix, then append tails of lengths
        // straddling the 32-base block size — the shifted word splice must agree with
        // per-base pushes bit for bit (tail residues and unaligned offsets).
        let tail_src: Vec<u8> = (0..140).map(|i| b"ACGTacgtN"[(i * 11 + 3) % 9]).collect();
        for prefix in 0..=33usize {
            for tail_len in [0usize, 1, 15, 16, 31, 32, 33, 63, 64, 65, 128, 130] {
                let mut fast = patterned(prefix);
                let mut slow = fast.clone();
                fast.extend_from_ascii(&tail_src[..tail_len]);
                for &c in &tail_src[..tail_len] {
                    slow.push_code(encode_base(c));
                }
                assert_eq!(fast, slow, "prefix={prefix} tail={tail_len}");
            }
        }
    }

    #[test]
    fn unchecked_codes_agree_with_checked_codes() {
        let seq = patterned(100);
        for i in 0..seq.len() {
            assert_eq!(unsafe { seq.get_code_unchecked(i) }, seq.get_code(i));
        }
    }
}
