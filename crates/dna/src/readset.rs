//! Read collections and the greedy distribution of reads across ranks.

use crate::kmer::KmerCode;
use crate::sequence::DnaSeq;

/// A single sequencing read: an identifier, an optional FASTA header, and the packed
/// sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// Dense identifier, unique within a [`ReadSet`] (used as `read_id` in extension
    /// information).
    pub id: u32,
    /// FASTA header (without the leading `>`), if the read came from a file.
    pub name: String,
    /// The packed sequence.
    pub seq: DnaSeq,
}

impl Read {
    /// Create a read from an ASCII sequence.
    pub fn from_ascii(id: u32, name: impl Into<String>, seq: &[u8]) -> Self {
        Read {
            id,
            name: name.into(),
            seq: DnaSeq::from_ascii(seq),
        }
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the read is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A collection of reads — the input to every counter in this workspace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    reads: Vec<Read>,
}

impl ReadSet {
    /// Empty read set.
    pub fn new() -> Self {
        ReadSet { reads: Vec::new() }
    }

    /// Build from packed sequences, assigning dense ids in order.
    pub fn from_seqs(seqs: Vec<DnaSeq>) -> Self {
        let reads = seqs
            .into_iter()
            .enumerate()
            .map(|(i, seq)| Read {
                id: i as u32,
                name: format!("read{i}"),
                seq,
            })
            .collect();
        ReadSet { reads }
    }

    /// Build from ASCII sequences, assigning dense ids in order.
    pub fn from_ascii_reads<S: AsRef<[u8]>>(seqs: &[S]) -> Self {
        Self::from_seqs(
            seqs.iter()
                .map(|s| DnaSeq::from_ascii(s.as_ref()))
                .collect(),
        )
    }

    /// Append a read, reassigning its id to keep ids dense.
    pub fn push(&mut self, mut read: Read) {
        read.id = self.reads.len() as u32;
        self.reads.push(read);
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// True if there are no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Immutable access to the reads.
    pub fn reads(&self) -> &[Read] {
        &self.reads
    }

    /// Iterate over the reads.
    pub fn iter(&self) -> impl Iterator<Item = &Read> {
        self.reads.iter()
    }

    /// Total number of bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(|r| r.len()).sum()
    }

    /// Total number of k-mers (over all reads) for a given k.
    pub fn total_kmers(&self, k: usize) -> usize {
        self.reads.iter().map(|r| r.seq.num_kmers(k)).sum()
    }

    /// Approximate size of the read set as an uncompressed ASCII FASTA payload, in
    /// bytes. Dataset presets use this to express "a 31 GB dataset scaled by 1e-4".
    pub fn ascii_bytes(&self) -> usize {
        self.total_bases() + self.reads.iter().map(|r| r.name.len() + 3).sum::<usize>()
    }

    /// Collect every canonical k-mer in the read set (reference counting path used by
    /// tests to validate the real counters).
    pub fn all_canonical_kmers<K: KmerCode>(&self, k: usize) -> Vec<K> {
        let mut out = Vec::with_capacity(self.total_kmers(k));
        for r in &self.reads {
            out.extend(r.seq.canonical_kmers::<K>(k));
        }
        out
    }

    /// Greedy contiguous partition of the reads into `parts` chunks balanced by base
    /// count — the "sequences from the input file are divided evenly between the
    /// processes using a greedy algorithm" step of the paper's Figure 1.
    ///
    /// Returns, for each part, the half-open range of read indices assigned to it.
    /// Contiguity is preserved so each rank can stream its slice of the input file.
    pub fn partition_by_bases(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        assert!(parts > 0);
        let mut ranges = Vec::with_capacity(parts);
        let mut remaining: usize = self.total_bases();
        let mut start = 0usize;
        for part in 0..parts {
            if start >= self.reads.len() {
                ranges.push(start..start);
                continue;
            }
            if part + 1 == parts {
                ranges.push(start..self.reads.len());
                start = self.reads.len();
                continue;
            }
            // Re-compute the per-part target from what is left so early over- or
            // under-shoots do not starve the final parts.
            let target = remaining.div_ceil(parts - part).max(1);
            let mut acc = 0usize;
            let mut end = start;
            while end < self.reads.len() {
                let len = self.reads[end].len();
                // Include the boundary read only if that lands closer to the target.
                if acc + len >= target {
                    let with = acc + len;
                    if with - target <= target - acc || acc == 0 {
                        end += 1;
                        acc = with;
                    }
                    break;
                }
                acc += len;
                end += 1;
            }
            remaining -= acc;
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// Materialise a sub-read-set for one partition range, preserving global read ids.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Vec<&Read> {
        self.reads[range].iter().collect()
    }
}

impl FromIterator<Read> for ReadSet {
    fn from_iter<T: IntoIterator<Item = Read>>(iter: T) -> Self {
        let mut rs = ReadSet::new();
        for r in iter {
            rs.push(r);
        }
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::Kmer1;

    fn sample() -> ReadSet {
        ReadSet::from_ascii_reads(&[
            b"ACGTACGTACGTACGT".as_slice(),
            b"TTTTTTTTTTTT".as_slice(),
            b"ACGGACGGACGGACGGACGGACGG".as_slice(),
            b"CAT".as_slice(),
        ])
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let rs = sample();
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.id as usize, i);
        }
    }

    #[test]
    fn totals_add_up() {
        let rs = sample();
        assert_eq!(rs.total_bases(), 16 + 12 + 24 + 3);
        let k = 5;
        assert_eq!(rs.total_kmers(k), (12 + 8 + 20));
        assert_eq!(rs.all_canonical_kmers::<Kmer1>(k).len(), rs.total_kmers(k));
    }

    #[test]
    fn partition_covers_everything_without_overlap() {
        let rs = sample();
        for parts in 1..=6 {
            let ranges = rs.partition_by_bases(parts);
            assert_eq!(ranges.len(), parts);
            let mut covered = 0;
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, rs.len());
            assert_eq!(expected_start, rs.len());
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let seqs: Vec<Vec<u8>> = (0..64).map(|i| vec![b'A'; 100 + (i % 7)]).collect();
        let rs = ReadSet::from_ascii_reads(&seqs);
        let parts = 8;
        let ranges = rs.partition_by_bases(parts);
        let sizes: Vec<usize> = ranges
            .iter()
            .map(|r| rs.reads()[r.clone()].iter().map(|x| x.len()).sum())
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max <= min * 2, "imbalanced partition: {sizes:?}");
    }

    #[test]
    fn push_reassigns_ids() {
        let mut rs = sample();
        rs.push(Read::from_ascii(999, "late", b"ACGT"));
        assert_eq!(rs.reads().last().unwrap().id, 4);
    }
}
