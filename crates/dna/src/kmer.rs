//! Packed k-mer representation.
//!
//! A [`Kmer<W>`] packs up to `32 * W` bases, 2 bits each, into `W` 64-bit words. The
//! packing is *right-aligned, most-significant-word-first*: the logical 2k-bit value
//! occupies the low `2k` bits of the `[u64; W]` array interpreted as a big integer with
//! `words[0]` the most significant word. With the `A=0 < C=1 < G=2 < T=3` base encoding
//! this makes the derived `Ord` (array lexicographic order) identical to the
//! lexicographic order of the underlying DNA strings of equal length — the property the
//! radix-sort-based counter relies on.
//!
//! Most pipeline code is generic over [`KmerCode`], so the same counting code handles
//! `k ≤ 32` with one word ([`Kmer1`]) and `k ≤ 64` with two words ([`Kmer2`], used for
//! the paper's `k = 55` experiments).

use std::fmt;
use std::hash::Hash;

use hysortk_sort::RadixKey;

use crate::base::{complement_code, decode_base, encode_base};

/// A fixed-size packed k-mer over `W` 64-bit words.
///
/// The value of `k` itself is *not* stored; it is threaded through the APIs that need it
/// (as in the paper's C++ implementation, where k is a runtime parameter shared by the
/// whole pipeline). Unused high bits are always zero, which keeps `Eq`/`Ord`/`Hash`
/// consistent regardless of k.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer<const W: usize> {
    words: [u64; W],
}

impl<const W: usize> Default for Kmer<W> {
    fn default() -> Self {
        Self::zero()
    }
}

/// One-word k-mer: supports k ≤ 32 (covers the paper's k = 17 and k = 31).
pub type Kmer1 = Kmer<1>;
/// Two-word k-mer: supports k ≤ 64 (covers the paper's k = 55).
pub type Kmer2 = Kmer<2>;

impl<const W: usize> Kmer<W> {
    /// The all-`A` k-mer (all bits zero).
    #[inline]
    pub fn zero() -> Self {
        Kmer { words: [0u64; W] }
    }

    /// Construct from raw words (most significant first). The caller must guarantee the
    /// unused high bits are zero for the intended k.
    #[inline]
    pub fn from_words(words: [u64; W]) -> Self {
        Kmer { words }
    }

    /// Raw packed words, most significant first.
    #[inline]
    pub fn words(&self) -> &[u64; W] {
        &self.words
    }

    /// Number of bases representable.
    #[inline]
    pub const fn capacity() -> usize {
        32 * W
    }

    /// Shift the whole value left by two bits (dropping into the next-more-significant
    /// word as needed) and insert `code` as the new least significant base, then mask to
    /// `k` bases. This is the rolling-window primitive used during read parsing.
    #[inline]
    pub fn push_base(mut self, k: usize, code: u8) -> Self {
        debug_assert!(k <= Self::capacity());
        // Multi-word shift left by 2.
        for i in 0..W - 1 {
            self.words[i] = (self.words[i] << 2) | (self.words[i + 1] >> 62);
        }
        self.words[W - 1] = (self.words[W - 1] << 2) | u64::from(code & 0b11);
        self.mask(k);
        self
    }

    /// Zero every bit above the low `2k` bits.
    #[inline]
    fn mask(&mut self, k: usize) {
        let total_bits = 2 * k;
        for i in 0..W {
            // Bits held by words[i] span logical positions
            // [(W-1-i)*64, (W-i)*64) counted from the least significant end.
            let low = (W - 1 - i) * 64;
            if total_bits <= low {
                self.words[i] = 0;
            } else {
                let bits_here = (total_bits - low).min(64);
                if bits_here < 64 {
                    self.words[i] &= (1u64 << bits_here) - 1;
                }
            }
        }
    }

    /// Rolling-window update of the **reverse-complement** strand: drop the least
    /// significant base (the complement of the window's oldest base) and insert the
    /// complement of `code` as the new most significant base (position `k - 1`).
    ///
    /// Keeping the forward window with [`Kmer::push_base`] and the reverse window with
    /// this primitive makes the canonical k-mer of every window position an O(1)
    /// `min(fwd, rc)` instead of an O(k) [`Kmer::reverse_complement`] rebuild — the
    /// trick the streaming supermer extractor uses for m-mers, applied to full k-mers
    /// by the receive-side decoder.
    #[inline]
    pub fn push_base_rc(mut self, k: usize, code: u8) -> Self {
        debug_assert!(k <= Self::capacity());
        // Multi-word shift right by 2.
        for i in (1..W).rev() {
            self.words[i] = (self.words[i] >> 2) | (self.words[i - 1] << 62);
        }
        self.words[0] >>= 2;
        // Insert the complement at logical bit position 2(k - 1).
        let bit = 2 * (k - 1);
        let word = W - 1 - bit / 64;
        let shift = bit % 64;
        self.words[word] |= u64::from(3 - (code & 0b11)) << shift;
        self
    }

    /// Build a k-mer from a slice of 2-bit base codes (`codes.len()` is k).
    #[inline]
    pub fn from_codes(codes: &[u8]) -> Self {
        let k = codes.len();
        assert!(k <= Self::capacity(), "k = {k} exceeds Kmer<{W}> capacity");
        let mut km = Self::zero();
        for &c in codes {
            km = km.push_base(k, c);
        }
        km
    }

    /// Build a k-mer from an ASCII DNA string (unknown characters map to `A`).
    pub fn from_ascii(seq: &[u8]) -> Self {
        let codes: Vec<u8> = seq.iter().map(|&c| encode_base(c)).collect();
        Self::from_codes(&codes)
    }

    /// The 2-bit code of base `i` (0-based from the 5' end / leftmost base).
    #[inline]
    pub fn base_at(&self, k: usize, i: usize) -> u8 {
        debug_assert!(i < k);
        let bit = 2 * (k - 1 - i);
        let word = W - 1 - bit / 64;
        let shift = bit % 64;
        ((self.words[word] >> shift) & 0b11) as u8
    }

    /// Reverse complement for a given k.
    pub fn reverse_complement(&self, k: usize) -> Self {
        let mut rc = Self::zero();
        for i in (0..k).rev() {
            rc = rc.push_base(k, complement_code(self.base_at(k, i)));
        }
        rc
    }

    /// Canonical form: the smaller of the k-mer and its reverse complement. Counting
    /// canonical k-mers merges the two strands, as every tool in the paper does.
    #[inline]
    pub fn canonical(&self, k: usize) -> Self {
        let rc = self.reverse_complement(k);
        if rc < *self {
            rc
        } else {
            *self
        }
    }

    /// The `idx`-th byte of the logical `2k`-bit value, most significant first.
    /// `idx` ranges over `0..Self::bytes_for(k)`.
    #[inline]
    pub fn byte_msb(&self, k: usize, idx: usize) -> u8 {
        let nbytes = Self::bytes_for(k);
        debug_assert!(idx < nbytes);
        // Byte `idx` covers logical bits [(nbytes-1-idx)*8, (nbytes-idx)*8).
        let bit = (nbytes - 1 - idx) * 8;
        let word = W - 1 - bit / 64;
        let shift = bit % 64;
        if shift <= 56 {
            ((self.words[word] >> shift) & 0xFF) as u8
        } else {
            // The byte straddles two words.
            let low = self.words[word] >> shift;
            let high = if word == 0 {
                0
            } else {
                self.words[word - 1] << (64 - shift)
            };
            ((low | high) & 0xFF) as u8
        }
    }

    /// Number of meaningful bytes for a given k (`⌈2k / 8⌉`).
    #[inline]
    pub const fn bytes_for(k: usize) -> usize {
        (2 * k).div_ceil(8)
    }

    /// Render as an ASCII DNA string of length k.
    pub fn to_string_k(&self, k: usize) -> String {
        (0..k)
            .map(|i| decode_base(self.base_at(k, i)) as char)
            .collect()
    }
}

impl<const W: usize> fmt::Debug for Kmer<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kmer<{}>{:x?}", W, self.words)
    }
}

/// A k-mer's packed words *are* its big-endian radix key, so the monomorphized radix
/// kernels (`hysortk_sort::raduls_sort` / `paradis_sort`) can sort k-mers — and
/// `(k-mer, payload)` records — with direct shift/mask word access. Levels above the
/// meaningful `2k` bits read as zero and are skipped by the kernels.
impl<const W: usize> RadixKey for Kmer<W> {
    const KEY_WORDS: usize = W;

    #[inline(always)]
    fn key_word(&self, w: usize) -> u64 {
        self.words[w]
    }
}

/// Abstraction over packed k-mer widths so pipeline code can be written once and
/// instantiated for `k ≤ 32` ([`Kmer1`]) or `k ≤ 64` ([`Kmer2`]).
///
/// `RadixKey` is a supertrait: every k-mer width sorts through the monomorphized
/// radix kernels without a digit closure.
pub trait KmerCode:
    Copy + Clone + Eq + Ord + Hash + Send + Sync + fmt::Debug + Default + RadixKey + 'static
{
    /// Number of 64-bit words in the representation.
    const WORDS: usize;

    /// Maximum supported k.
    fn max_k() -> usize;
    /// The all-`A` k-mer.
    fn zero() -> Self;
    /// Rolling push of one base code.
    fn push_base(self, k: usize, code: u8) -> Self;
    /// Rolling push on the reverse-complement strand (see [`Kmer::push_base_rc`]):
    /// rolling both strands makes the canonical form an O(1) `min(fwd, rc)`.
    fn push_base_rc(self, k: usize, code: u8) -> Self;
    /// Build from base codes.
    fn from_codes(codes: &[u8]) -> Self;
    /// Reconstruct from raw packed words (most significant first, exactly
    /// [`KmerCode::word_slice`]'s layout). The caller must guarantee the unused high
    /// bits are zero, as `word_slice` always produces.
    fn from_word_slice(words: &[u64]) -> Self;
    /// Base code at position `i`.
    fn base_at(&self, k: usize, i: usize) -> u8;
    /// Reverse complement.
    fn reverse_complement(&self, k: usize) -> Self;
    /// Canonical (strand-merged) form.
    fn canonical(&self, k: usize) -> Self;
    /// Packed words, most significant first.
    fn word_slice(&self) -> &[u64];
    /// Most-significant-first byte extraction over the 2k-bit value.
    fn byte_msb(&self, k: usize, idx: usize) -> u8;
    /// Number of radix bytes for a given k.
    fn num_bytes(k: usize) -> usize;
    /// ASCII rendering.
    fn to_dna_string(&self, k: usize) -> String;
}

impl<const W: usize> KmerCode for Kmer<W> {
    const WORDS: usize = W;

    #[inline]
    fn max_k() -> usize {
        Self::capacity()
    }
    #[inline]
    fn zero() -> Self {
        Kmer::zero()
    }
    #[inline]
    fn push_base(self, k: usize, code: u8) -> Self {
        Kmer::push_base(self, k, code)
    }
    #[inline]
    fn push_base_rc(self, k: usize, code: u8) -> Self {
        Kmer::push_base_rc(self, k, code)
    }
    #[inline]
    fn from_codes(codes: &[u8]) -> Self {
        Kmer::from_codes(codes)
    }
    #[inline]
    fn from_word_slice(words: &[u64]) -> Self {
        assert_eq!(
            words.len(),
            W,
            "word slice length must match the k-mer width"
        );
        let mut out = [0u64; W];
        out.copy_from_slice(words);
        Kmer::from_words(out)
    }
    #[inline]
    fn base_at(&self, k: usize, i: usize) -> u8 {
        Kmer::base_at(self, k, i)
    }
    #[inline]
    fn reverse_complement(&self, k: usize) -> Self {
        Kmer::reverse_complement(self, k)
    }
    #[inline]
    fn canonical(&self, k: usize) -> Self {
        Kmer::canonical(self, k)
    }
    #[inline]
    fn word_slice(&self) -> &[u64] {
        &self.words
    }
    #[inline]
    fn byte_msb(&self, k: usize, idx: usize) -> u8 {
        Kmer::byte_msb(self, k, idx)
    }
    #[inline]
    fn num_bytes(k: usize) -> usize {
        Self::bytes_for(k)
    }
    #[inline]
    fn to_dna_string(&self, k: usize) -> String {
        self.to_string_k(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ascii_and_back() {
        let s = b"ACGTACGTACGTACGTACGTACGTACGTACG"; // 31 bases
        let km = Kmer1::from_ascii(s);
        assert_eq!(km.to_string_k(31), String::from_utf8_lossy(s));
    }

    #[test]
    fn two_word_round_trip() {
        let s: Vec<u8> = (0..55).map(|i| b"ACGT"[i % 4]).collect();
        let km = Kmer2::from_ascii(&s);
        assert_eq!(km.to_string_k(55), String::from_utf8_lossy(&s));
    }

    #[test]
    fn ordering_matches_string_ordering() {
        let a = Kmer1::from_ascii(b"AACGT");
        let b = Kmer1::from_ascii(b"AACTT");
        let c = Kmer1::from_ascii(b"TACGT");
        assert!(a < b);
        assert!(b < c);
        // Cross-check against string comparison for a larger sample.
        let strings = [
            "ACGTA", "AAAAA", "TTTTT", "GATCA", "CCCCC", "GGGGT", "ATATA",
        ];
        let mut by_str: Vec<&str> = strings.to_vec();
        by_str.sort();
        let mut by_kmer: Vec<&str> = strings.to_vec();
        by_kmer.sort_by_key(|s| Kmer1::from_ascii(s.as_bytes()));
        assert_eq!(by_str, by_kmer);
    }

    #[test]
    fn push_base_is_a_sliding_window() {
        let seq = b"ACGTTGCAGTACGTAA";
        let k = 5;
        let mut rolling = Kmer1::zero();
        for (i, &c) in seq.iter().enumerate() {
            rolling = rolling.push_base(k, encode_base(c));
            if i + 1 >= k {
                let expected = Kmer1::from_ascii(&seq[i + 1 - k..=i]);
                assert_eq!(rolling, expected, "window ending at {i}");
            }
        }
    }

    #[test]
    fn push_base_rc_rolls_the_reverse_complement_window() {
        // Rolling both strands must reproduce the O(k) rebuild at every window
        // position, for both one- and two-word k-mers (including word-straddling k).
        let seq = b"ACGTTGCAGTACGTAACCGGTTAAGCATGCATGGCTAGCTAACGTTGCAGTACGTAACCGGTT";
        for k in [3usize, 5, 31, 32] {
            let mut fwd = Kmer1::zero();
            let mut rc = Kmer1::zero();
            for (i, &c) in seq.iter().enumerate() {
                let code = encode_base(c);
                fwd = fwd.push_base(k, code);
                rc = rc.push_base_rc(k, code);
                if i + 1 >= k {
                    assert_eq!(rc, fwd.reverse_complement(k), "k={k}, window ending {i}");
                }
            }
        }
        for k in [33usize, 40, 55, 64] {
            let mut fwd = Kmer2::zero();
            let mut rc = Kmer2::zero();
            for (i, &c) in seq.iter().enumerate() {
                let code = encode_base(c);
                fwd = fwd.push_base(k, code);
                rc = rc.push_base_rc(k, code);
                if i + 1 >= k {
                    assert_eq!(rc, fwd.reverse_complement(k), "k={k}, window ending {i}");
                }
            }
        }
    }

    #[test]
    fn reverse_complement_involution_and_value() {
        let km = Kmer1::from_ascii(b"ACGTT");
        assert_eq!(km.reverse_complement(5).to_string_k(5), "AACGT");
        assert_eq!(km.reverse_complement(5).reverse_complement(5), km);

        let long: Vec<u8> = (0..55).map(|i| b"ACGGTTAC"[i % 8]).collect();
        let km2 = Kmer2::from_ascii(&long);
        assert_eq!(km2.reverse_complement(55).reverse_complement(55), km2);
    }

    #[test]
    fn canonical_is_min_of_strands() {
        let km = Kmer1::from_ascii(b"TTTTT");
        assert_eq!(km.canonical(5).to_string_k(5), "AAAAA");
        let km = Kmer1::from_ascii(b"AAAAA");
        assert_eq!(km.canonical(5).to_string_k(5), "AAAAA");
        // A palindromic (reverse-complement-symmetric) k-mer maps to itself.
        let km = Kmer1::from_ascii(b"ACGT");
        assert_eq!(km.canonical(4), km);
    }

    #[test]
    fn byte_msb_covers_value_msb_first() {
        let k = 31; // 62 bits -> 8 bytes
        assert_eq!(Kmer1::bytes_for(k), 8);
        let km = Kmer1::from_ascii(b"TGCATGCATGCATGCATGCATGCATGCATGC");
        let mut reconstructed: u64 = 0;
        for idx in 0..8 {
            reconstructed = (reconstructed << 8) | u64::from(km.byte_msb(k, idx));
        }
        assert_eq!(reconstructed, km.words()[0]);
    }

    #[test]
    fn byte_msb_two_words_straddle() {
        let k = 55; // 110 bits -> 14 bytes
        assert_eq!(Kmer2::bytes_for(k), 14);
        let seq: Vec<u8> = (0..55).map(|i| b"TGCA"[i % 4]).collect();
        let km = Kmer2::from_ascii(&seq);
        let mut reconstructed: u128 = 0;
        for idx in 0..14 {
            reconstructed = (reconstructed << 8) | u128::from(km.byte_msb(k, idx));
        }
        let expected = (u128::from(km.words()[0]) << 64) | u128::from(km.words()[1]);
        assert_eq!(reconstructed, expected);
    }

    #[test]
    fn byte_ordering_matches_kmer_ordering() {
        // Sorting by MSB-first bytes must agree with Ord — the radix sorts depend on it.
        let k = 13;
        let seqs = [
            "ACGTACGTACGTA",
            "TTTTTTTTTTTTT",
            "AAAAAAAAAAAAA",
            "GGGGGCCCCCAAA",
            "ACGTTTTTTTTTT",
        ];
        let kmers: Vec<Kmer1> = seqs
            .iter()
            .map(|s| Kmer1::from_ascii(s.as_bytes()))
            .collect();
        let mut by_ord = kmers.clone();
        by_ord.sort();
        let mut by_bytes = kmers.clone();
        by_bytes.sort_by(|a, b| {
            let na = Kmer1::bytes_for(k);
            for i in 0..na {
                match a.byte_msb(k, i).cmp(&b.byte_msb(k, i)) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        assert_eq!(by_ord, by_bytes);
    }

    #[test]
    fn radix_key_words_match_packed_words_and_sort_like_ord() {
        let seq: Vec<u8> = (0..55).map(|i| b"TGAC"[i % 4]).collect();
        let km = Kmer2::from_ascii(&seq);
        assert_eq!(km.key_word(0), km.words()[0]);
        assert_eq!(km.key_word(1), km.words()[1]);

        let mut kmers: Vec<Kmer1> = ["ACGTA", "AAAAA", "TTTTT", "GATCA", "CCCCC"]
            .iter()
            .map(|s| Kmer1::from_ascii(s.as_bytes()))
            .collect();
        let mut by_ord = kmers.clone();
        by_ord.sort();
        hysortk_sort::raduls_sort(&mut kmers);
        assert_eq!(kmers, by_ord);
    }

    #[test]
    fn from_word_slice_round_trips() {
        let km = Kmer1::from_ascii(b"GATTACAGATTACAGATTACA");
        assert_eq!(Kmer1::from_word_slice(km.word_slice()), km);
        let long: Vec<u8> = (0..55).map(|i| b"ACGGTTAC"[i % 8]).collect();
        let km2 = Kmer2::from_ascii(&long);
        assert_eq!(Kmer2::from_word_slice(km2.word_slice()), km2);
    }

    #[test]
    fn base_at_reads_back_positions() {
        let km = Kmer1::from_ascii(b"GATTACA");
        let expected = [2u8, 0, 3, 3, 0, 1, 0];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(km.base_at(7, i), e);
        }
    }
}
