//! Chunked, rank-sharded FASTA/FASTQ ingestion.
//!
//! The [`fasta`](crate::fasta) module keeps the original whole-file, line-by-line
//! reader as the in-memory reference entry point (including its map-unknown-bases-to-`A`
//! policy). This module is the *streaming* input path the pipeline actually ingests real
//! files through:
//!
//! * **Chunked reading** — files are read in fixed-size byte blocks into one reusable
//!   buffer ([`IngestOptions::block_bytes`]); the whole file is never materialised.
//!   Memory is bounded by one block plus the longest input line, not by the file size.
//! * **FASTA and FASTQ** — multi-line FASTA records and 4-line FASTQ records (the
//!   overwhelmingly common single-line-sequence form) both parse into packed
//!   [`Read`]s; the format is detected per file from the extension, falling back to
//!   the first byte.
//! * **Rank sharding** — [`ShardReader`] gives each simulated rank a byte range of the
//!   input (over the concatenation of all files), realigned forward to the next record
//!   start, so `p` ranks each stream ~`1/p` of the bytes and every record is parsed by
//!   exactly one rank. A record whose first byte falls in a shard belongs to that
//!   shard even when its bases extend past the boundary.
//! * **Ambiguous bases split reads** — runs of non-`ACGT` characters (`N`, IUPAC
//!   codes, …) cut the read into fragments instead of being silently mapped to `A`:
//!   no k-mer spanning an ambiguous base is ever fabricated, matching what real
//!   counters do. Fragments shorter than [`IngestOptions::min_fragment`] are dropped
//!   (they cannot contain a k-mer when `min_fragment = k`).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read as _, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::readset::{Read, ReadSet};
use crate::sequence::DnaSeq;

/// Supported on-disk sequence formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqFormat {
    /// `>header` records with one or more sequence lines.
    Fasta,
    /// `@header` / sequence / `+` / quality 4-line records.
    Fastq,
}

impl SeqFormat {
    /// Detect the format from a file extension (`.fa`, `.fasta`, `.fna` → FASTA;
    /// `.fq`, `.fastq` → FASTQ).
    pub fn from_extension(path: &Path) -> Option<SeqFormat> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "fa" | "fasta" | "fna" | "ffn" | "frn" => Some(SeqFormat::Fasta),
            "fq" | "fastq" => Some(SeqFormat::Fastq),
            _ => None,
        }
    }

    /// Detect the format from the first byte of the file (`>` → FASTA, `@` → FASTQ).
    pub fn from_leading_byte(byte: u8) -> Option<SeqFormat> {
        match byte {
            b'>' => Some(SeqFormat::Fasta),
            b'@' => Some(SeqFormat::Fastq),
            _ => None,
        }
    }
}

/// Tunables of the streaming readers.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Bytes read from disk per refill of the reusable block buffer.
    pub block_bytes: usize,
    /// Reads per batch yielded by [`ShardReader::next_batch`].
    pub batch_records: usize,
    /// Fragments (after splitting at ambiguous-base runs) shorter than this are
    /// dropped. The pipeline sets it to `k`; shorter fragments contain no k-mer.
    pub min_fragment: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            block_bytes: 1 << 20,
            batch_records: 1_024,
            min_fragment: 1,
        }
    }
}

/// One input file with its size and detected format — the unit the shard math works on.
#[derive(Debug, Clone)]
pub struct InputFile {
    /// Path on disk.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Detected format.
    pub format: SeqFormat,
}

/// Stat and format-detect a list of input paths (order preserved — the shard byte
/// space is the concatenation of the files in this order).
pub fn list_inputs<P: AsRef<Path>>(paths: &[P]) -> io::Result<Vec<InputFile>> {
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let path = p.as_ref().to_path_buf();
        let bytes = std::fs::metadata(&path)?.len();
        let format = match SeqFormat::from_extension(&path) {
            Some(f) => f,
            None => {
                let mut first = [0u8; 1];
                let n = File::open(&path)?.read(&mut first)?;
                (n == 1)
                    .then(|| SeqFormat::from_leading_byte(first[0]))
                    .flatten()
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: cannot detect FASTA/FASTQ format", path.display()),
                        )
                    })?
            }
        };
        out.push(InputFile {
            path,
            bytes,
            format,
        });
    }
    Ok(out)
}

/// True for I/O errors that are worth retrying: the kernel or filesystem hiccuped
/// (`Interrupted`, `TimedOut`, `WouldBlock`) rather than the input being wrong.
/// Malformed-record errors (`InvalidData`) and missing files are *not* transient —
/// retrying them can only reproduce the same failure.
pub fn is_transient_io_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Split `total` bytes into `ranks` contiguous half-open ranges of near-equal size.
/// Records are owned by the range containing their first byte, so equal *byte* shares
/// translate into near-equal record shares for any realistic record-length mix.
pub fn shard_byte_ranges(total: u64, ranks: usize) -> Vec<(u64, u64)> {
    assert!(ranks > 0);
    (0..ranks as u64)
        .map(|r| (total * r / ranks as u64, total * (r + 1) / ranks as u64))
        .collect()
}

// ---------------------------------------------------------------------------------------
// Chunked line scanning
// ---------------------------------------------------------------------------------------

/// A line scanner that reads its source in fixed-size blocks into one reusable buffer.
///
/// The buffer holds at most one block plus the carry of a line spanning a block edge,
/// so memory stays bounded by `block + longest line` regardless of file size.
struct BlockLines<R> {
    src: R,
    buf: Vec<u8>,
    start: usize,
    block: usize,
    eof: bool,
    /// Byte offset (within the file) of `buf[start]`.
    pos: u64,
    /// Bytes past `start` already scanned and known to hold no `\n` — the newline
    /// search resumes here after a refill, so a line spanning many blocks costs
    /// O(length) total instead of rescanning the growing carry per block
    /// (O(length²/block) on unwrapped single-line FASTA).
    searched: usize,
}

impl<R: io::Read> BlockLines<R> {
    fn new(src: R, block: usize, pos: u64) -> Self {
        BlockLines {
            src,
            buf: Vec::new(),
            start: 0,
            block: block.max(16),
            eof: false,
            pos,
            searched: 0,
        }
    }

    /// Current capacity of the internal buffer (test hook for the memory bound).
    fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Read the next line into `out` (cleared first; no `\n`, trailing `\r` trimmed).
    /// Returns the byte offset of the line start, or `None` at end of input.
    fn read_line_into(&mut self, out: &mut Vec<u8>) -> io::Result<Option<u64>> {
        loop {
            if let Some(i) = self.buf[self.start + self.searched..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let i = self.searched + i;
                let line = &self.buf[self.start..self.start + i];
                let off = self.pos;
                out.clear();
                out.extend_from_slice(trim_cr(line));
                self.start += i + 1;
                self.pos += (i + 1) as u64;
                self.searched = 0;
                return Ok(Some(off));
            }
            self.searched = self.buf.len() - self.start;
            if self.eof {
                if self.start < self.buf.len() {
                    let off = self.pos;
                    out.clear();
                    out.extend_from_slice(trim_cr(&self.buf[self.start..]));
                    self.pos += (self.buf.len() - self.start) as u64;
                    self.start = self.buf.len();
                    self.searched = 0;
                    return Ok(Some(off));
                }
                return Ok(None);
            }
            // Compact the unconsumed carry to the front and refill one block.
            self.buf.drain(..self.start);
            self.start = 0;
            let old = self.buf.len();
            self.buf.resize(old + self.block, 0);
            let mut filled = 0usize;
            while filled < self.block {
                match self.src.read(&mut self.buf[old + filled..])? {
                    0 => {
                        self.eof = true;
                        break;
                    }
                    n => filled += n,
                }
            }
            self.buf.truncate(old + filled);
        }
    }
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

// ---------------------------------------------------------------------------------------
// Per-file shard piece parsing
// ---------------------------------------------------------------------------------------

/// One file's slice of a shard: records starting in `[start, end)` of `file` belong to
/// this piece (the last record may extend past `end`).
#[derive(Debug, Clone)]
struct Piece {
    path: PathBuf,
    format: SeqFormat,
    start: u64,
    end: u64,
}

/// Streaming parser over one [`Piece`].
struct PieceParser {
    lines: BlockLines<File>,
    format: SeqFormat,
    end: u64,
    /// Look-ahead lines buffered during record-boundary realignment, in input order.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Reusable line buffer.
    line: Vec<u8>,
    /// FASTA: header of the record currently being parsed.
    fasta_header: Option<String>,
    done: bool,
    path: PathBuf,
}

impl PieceParser {
    fn open(piece: &Piece, block: usize) -> io::Result<Self> {
        let mut file = File::open(&piece.path)?;
        // Realign to a line boundary: seek one byte *before* the shard start so a
        // record beginning exactly at `start` is still seen as a line start (its
        // preceding byte is the `\n` the skipped partial line ends with).
        let seek = piece.start.saturating_sub(1);
        if seek > 0 {
            file.seek(SeekFrom::Start(seek))?;
        }
        let mut parser = PieceParser {
            lines: BlockLines::new(file, block, seek),
            format: piece.format,
            end: piece.end,
            pending: VecDeque::new(),
            line: Vec::new(),
            fasta_header: None,
            done: false,
            path: piece.path.clone(),
        };
        if piece.start > 0 {
            // Discard the partial line the seek landed in (empty when `start - 1`
            // held the newline).
            let mut skip = Vec::new();
            if parser.lines.read_line_into(&mut skip)?.is_none() {
                parser.done = true;
                return Ok(parser);
            }
        }
        match piece.format {
            SeqFormat::Fasta => parser.align_fasta()?,
            SeqFormat::Fastq => parser.align_fastq()?,
        }
        Ok(parser)
    }

    fn next_line(&mut self) -> io::Result<Option<u64>> {
        if let Some((off, bytes)) = self.pending.pop_front() {
            self.line = bytes;
            return Ok(Some(off));
        }
        let mut line = std::mem::take(&mut self.line);
        let off = self.lines.read_line_into(&mut line)?;
        self.line = line;
        Ok(off)
    }

    /// Scan forward to the first FASTA header owned by this piece.
    fn align_fasta(&mut self) -> io::Result<()> {
        loop {
            match self.next_line()? {
                None => {
                    self.done = true;
                    return Ok(());
                }
                Some(off) => {
                    // Offsets only grow, so once a line starts at or past the piece
                    // end no owned record can follow — stop instead of streaming the
                    // rest of the file (a piece inside one huge record would
                    // otherwise scan to EOF).
                    if off >= self.end {
                        self.done = true;
                        return Ok(());
                    }
                    if self.line.first() == Some(&b'>') {
                        self.fasta_header = Some(header_name(&self.line));
                        return Ok(());
                    }
                    // Sequence (or blank) line of a record started in the previous
                    // shard — skip.
                }
            }
        }
    }

    /// Scan forward to the first FASTQ record header owned by this piece. `@` is
    /// ambiguous (it is a legal quality character, including at line starts), so a
    /// line only counts as a header when the line two below starts with `+` — a
    /// sequence line never can.
    fn align_fastq(&mut self) -> io::Result<()> {
        let mut window: VecDeque<(u64, Vec<u8>)> = VecDeque::new();
        loop {
            while window.len() < 3 {
                match self.next_line()? {
                    None => {
                        self.done = true;
                        return Ok(());
                    }
                    Some(off) => window.push_back((off, self.line.clone())),
                }
            }
            // Same early exit as the FASTA alignment: a candidate at or past the
            // piece end cannot be owned, and offsets only grow.
            if window[0].0 >= self.end {
                self.done = true;
                return Ok(());
            }
            let is_record_start =
                window[0].1.first() == Some(&b'@') && window[2].1.first() == Some(&b'+');
            if is_record_start {
                // Replay the buffered lines through the parser.
                self.pending = window;
                return Ok(());
            }
            window.pop_front();
        }
    }

    fn malformed(&self, what: &str, offset: u64) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {} at byte {}", self.path.display(), what, offset),
        )
    }

    /// Parse the next record into `out` (0 or more fragments after ambiguous-base
    /// splitting). Returns `false` once the piece is exhausted.
    fn next_record(&mut self, out: &mut Vec<Read>, min_fragment: usize) -> io::Result<bool> {
        if self.done {
            return Ok(false);
        }
        match self.format {
            SeqFormat::Fasta => self.next_fasta_record(out, min_fragment),
            SeqFormat::Fastq => self.next_fastq_record(out, min_fragment),
        }
    }

    fn next_fasta_record(&mut self, out: &mut Vec<Read>, min_fragment: usize) -> io::Result<bool> {
        let Some(name) = self.fasta_header.take() else {
            self.done = true;
            return Ok(false);
        };
        let mut splitter = FragmentSplitter::new(&name, min_fragment);
        loop {
            match self.next_line()? {
                None => {
                    self.done = true;
                    break;
                }
                Some(off) => {
                    if self.line.first() == Some(&b'>') {
                        if off >= self.end {
                            self.done = true;
                        } else {
                            self.fasta_header = Some(header_name(&self.line));
                        }
                        break;
                    }
                    splitter.push_ascii(&self.line);
                }
            }
        }
        splitter.finish(out);
        Ok(true)
    }

    fn next_fastq_record(&mut self, out: &mut Vec<Read>, min_fragment: usize) -> io::Result<bool> {
        let Some(off) = self.next_line()? else {
            self.done = true;
            return Ok(false);
        };
        if off >= self.end {
            self.done = true;
            return Ok(false);
        }
        if self.line.first() != Some(&b'@') {
            return Err(self.malformed("expected '@' record header", off));
        }
        let name = header_name(&self.line);
        let seq_off = self
            .next_line()?
            .ok_or_else(|| self.malformed("truncated record: missing sequence", off))?;
        let mut splitter = FragmentSplitter::new(&name, min_fragment);
        splitter.push_ascii(&self.line);
        let seq_len: usize = splitter.pushed_bases;
        let plus_off = self
            .next_line()?
            .ok_or_else(|| self.malformed("truncated record: missing '+' separator", seq_off))?;
        if self.line.first() != Some(&b'+') {
            return Err(self.malformed("expected '+' separator", plus_off));
        }
        let qual_off = self
            .next_line()?
            .ok_or_else(|| self.malformed("truncated record: missing quality line", plus_off))?;
        if self.line.len() != seq_len {
            return Err(self.malformed(
                &format!(
                    "quality length {} does not match sequence length {}",
                    self.line.len(),
                    seq_len
                ),
                qual_off,
            ));
        }
        splitter.finish(out);
        Ok(true)
    }
}

/// Extract the record name from a `>`/`@` header line.
fn header_name(line: &[u8]) -> String {
    String::from_utf8_lossy(&line[1..]).trim().to_string()
}

/// Accumulates sequence characters, cutting a new fragment at every run of
/// non-`ACGT` characters.
struct FragmentSplitter<'a> {
    name: &'a str,
    min_fragment: usize,
    current: DnaSeq,
    fragments: Vec<DnaSeq>,
    /// Total ASCII bases pushed (including ambiguous ones) — the FASTQ parser checks
    /// the quality line against this.
    pushed_bases: usize,
}

impl<'a> FragmentSplitter<'a> {
    fn new(name: &'a str, min_fragment: usize) -> Self {
        FragmentSplitter {
            name,
            min_fragment: min_fragment.max(1),
            current: DnaSeq::new(),
            fragments: Vec::new(),
            pushed_bases: 0,
        }
    }

    fn push_ascii(&mut self, line: &[u8]) {
        self.pushed_bases += line.len();
        // SIMD scan for the next ambiguous character, bulk-append the clean run
        // through the packed 32-base kernel, cut, skip the ambiguous byte, repeat —
        // equivalent to the per-character `Base::from_ascii` match, which remains the
        // reference the ingestion property tests compare against.
        let mut rest = line;
        loop {
            let clean = crate::simd::first_non_acgt(rest);
            if clean > 0 {
                self.current.extend_from_ascii(&rest[..clean]);
            }
            if clean == rest.len() {
                break;
            }
            self.cut();
            rest = &rest[clean + 1..];
        }
    }

    fn cut(&mut self) {
        if self.current.len() >= self.min_fragment {
            self.fragments.push(std::mem::take(&mut self.current));
        } else if !self.current.is_empty() {
            self.current = DnaSeq::new();
        }
    }

    fn finish(mut self, out: &mut Vec<Read>) {
        self.cut();
        for seq in self.fragments {
            out.push(Read {
                id: 0, // assigned by the consumer
                name: self.name.to_string(),
                seq,
            });
        }
    }
}

// ---------------------------------------------------------------------------------------
// The rank-sharded reader
// ---------------------------------------------------------------------------------------

/// Streams one rank's shard of a multi-file input as batches of packed [`Read`]s.
///
/// The shard is the rank's byte range of the concatenated input (see
/// [`shard_byte_ranges`]), realigned to record starts per file; records never span
/// files. `next_batch` yields at most [`IngestOptions::batch_records`] reads at a
/// time (plus the final record's extra fragments, if it split at ambiguous bases),
/// so peak ingestion memory is one block buffer plus one batch of packed reads.
pub struct ShardReader {
    pieces: Vec<Piece>,
    next_piece: usize,
    current: Option<PieceParser>,
    opts: IngestOptions,
    /// Largest block-buffer capacity observed across pieces (test/diagnostic hook).
    peak_buffer: usize,
    /// Furthest any piece scanned past its byte range (test/diagnostic hook) —
    /// bounded by the piece's final owned record, not by the file tail.
    scan_past_end: u64,
}

impl ShardReader {
    /// Open rank `rank` of `ranks`'s shard over `files`.
    pub fn open(
        files: &[InputFile],
        rank: usize,
        ranks: usize,
        opts: IngestOptions,
    ) -> io::Result<Self> {
        assert!(rank < ranks, "rank {rank} out of range for {ranks} ranks");
        let total: u64 = files.iter().map(|f| f.bytes).sum();
        let (start, end) = shard_byte_ranges(total, ranks)[rank];
        let mut pieces = Vec::new();
        let mut offset = 0u64;
        for f in files {
            let file_start = offset;
            let file_end = offset + f.bytes;
            offset = file_end;
            let lo = start.max(file_start);
            let hi = end.min(file_end);
            if lo >= hi {
                continue;
            }
            pieces.push(Piece {
                path: f.path.clone(),
                format: f.format,
                start: lo - file_start,
                end: hi - file_start,
            });
        }
        Ok(ShardReader {
            pieces,
            next_piece: 0,
            current: None,
            opts,
            peak_buffer: 0,
            scan_past_end: 0,
        })
    }

    /// The next batch of reads (ids are all 0 — the consumer assigns them), or `None`
    /// once the shard is exhausted. A batch holds at most
    /// [`IngestOptions::batch_records`] reads, plus however many extra fragments the
    /// final record splits into at its ambiguous-base runs.
    pub fn next_batch(&mut self) -> io::Result<Option<Vec<Read>>> {
        let mut batch = Vec::new();
        let limit = self.opts.batch_records.max(1);
        while batch.len() < limit {
            if self.current.is_none() {
                if self.next_piece >= self.pieces.len() {
                    break;
                }
                let piece = self.pieces[self.next_piece].clone();
                self.next_piece += 1;
                self.current = Some(PieceParser::open(&piece, self.opts.block_bytes)?);
            }
            let parser = self.current.as_mut().expect("parser just installed");
            if !parser.next_record(&mut batch, self.opts.min_fragment)? {
                self.peak_buffer = self.peak_buffer.max(parser.lines.buffer_capacity());
                self.scan_past_end = self
                    .scan_past_end
                    .max(parser.lines.pos.saturating_sub(parser.end));
                self.current = None;
            }
        }
        if batch.is_empty() && self.current.is_none() && self.next_piece >= self.pieces.len() {
            return Ok(None);
        }
        Ok(Some(batch))
    }

    /// Furthest any completed piece read past its assigned byte range. Bounded by the
    /// piece's final owned record (which may legitimately extend past the boundary)
    /// plus one line of realignment look-ahead — never by the file tail: alignment
    /// stops as soon as line offsets reach the range end.
    pub fn max_scan_past_end(&self) -> u64 {
        self.scan_past_end
    }

    /// Largest internal block-buffer capacity seen so far — bounded by
    /// `block_bytes + longest input line`, independent of file size.
    pub fn peak_buffer_bytes(&self) -> usize {
        let current = self
            .current
            .as_ref()
            .map(|p| p.lines.buffer_capacity())
            .unwrap_or(0);
        self.peak_buffer.max(current)
    }
}

/// Read entire files through the streaming readers into a [`ReadSet`] (single shard).
/// Read ids are dense in input order.
pub fn read_paths<P: AsRef<Path>>(paths: &[P], opts: IngestOptions) -> io::Result<ReadSet> {
    let files = list_inputs(paths)?;
    let mut shard = ShardReader::open(&files, 0, 1, opts)?;
    let mut rs = ReadSet::new();
    while let Some(batch) = shard.next_batch()? {
        for read in batch {
            rs.push(read);
        }
    }
    Ok(rs)
}

// ---------------------------------------------------------------------------------------
// FASTQ writing (FASTA writing lives in `crate::fasta`)
// ---------------------------------------------------------------------------------------

/// Serialise a [`ReadSet`] as FASTQ text (constant `I` quality — Phred 40).
/// Materialises the whole document; for large read sets prefer the streaming
/// [`write_fastq_file`].
pub fn to_fastq_string(reads: &ReadSet) -> String {
    let mut out = String::with_capacity(reads.ascii_bytes() * 2);
    for r in reads.iter() {
        out.push('@');
        out.push_str(&r.name);
        out.push('\n');
        let ascii = r.seq.to_ascii();
        out.push_str(std::str::from_utf8(&ascii).expect("ASCII DNA"));
        out.push_str("\n+\n");
        out.push_str(&"I".repeat(r.seq.len()));
        out.push('\n');
    }
    out
}

/// Write a [`ReadSet`] to a FASTQ file, one record at a time (memory stays O(longest
/// read), matching the module's bounded-memory contract on the write side too).
pub fn write_fastq_file(path: impl AsRef<Path>, reads: &ReadSet) -> io::Result<()> {
    let mut w = io::BufWriter::new(File::create(path)?);
    let mut quality: Vec<u8> = Vec::new();
    for r in reads.iter() {
        w.write_all(b"@")?;
        w.write_all(r.name.as_bytes())?;
        w.write_all(b"\n")?;
        w.write_all(&r.seq.to_ascii())?;
        w.write_all(b"\n+\n")?;
        quality.clear();
        quality.resize(r.seq.len(), b'I');
        w.write_all(&quality)?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hysortk_io_test_{}_{tag}", std::process::id()))
    }

    fn write_tmp(tag: &str, text: &str) -> PathBuf {
        let path = tmp_path(tag);
        std::fs::write(&path, text).unwrap();
        path
    }

    fn tiny_opts(block: usize) -> IngestOptions {
        IngestOptions {
            block_bytes: block,
            batch_records: 3,
            min_fragment: 1,
        }
    }

    fn collect_all(files: &[InputFile], rank: usize, ranks: usize, block: usize) -> Vec<Read> {
        let mut shard = ShardReader::open(files, rank, ranks, tiny_opts(block)).unwrap();
        let mut out = Vec::new();
        while let Some(batch) = shard.next_batch().unwrap() {
            out.extend(batch);
        }
        out
    }

    fn ascii(reads: &[Read]) -> Vec<(String, Vec<u8>)> {
        reads
            .iter()
            .map(|r| (r.name.clone(), r.seq.to_ascii()))
            .collect()
    }

    #[test]
    fn format_detection_by_extension_and_byte() {
        assert_eq!(
            SeqFormat::from_extension(Path::new("x/reads.FASTA")),
            Some(SeqFormat::Fasta)
        );
        assert_eq!(
            SeqFormat::from_extension(Path::new("reads.fq")),
            Some(SeqFormat::Fastq)
        );
        assert_eq!(SeqFormat::from_extension(Path::new("reads.txt")), None);
        assert_eq!(SeqFormat::from_leading_byte(b'>'), Some(SeqFormat::Fasta));
        assert_eq!(SeqFormat::from_leading_byte(b'@'), Some(SeqFormat::Fastq));
        assert_eq!(SeqFormat::from_leading_byte(b'A'), None);
    }

    #[test]
    fn fasta_chunked_parse_matches_reference_for_every_block_size() {
        let text = ">r one\nACGTACGTAC\nGTAC\n\n>r two\nTTTTGGGG\n>r three\nCCCC\n";
        let path = write_tmp("blocks.fa", text);
        let expected = fasta::parse_fasta_str(text);
        for block in [16, 17, 19, 64, 4096] {
            let files = list_inputs(&[&path]).unwrap();
            let got = collect_all(&files, 0, 1, block);
            assert_eq!(got.len(), expected.len(), "block {block}");
            for (g, e) in got.iter().zip(expected.iter()) {
                assert_eq!(g.name, e.name, "block {block}");
                assert_eq!(g.seq, e.seq, "block {block}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fastq_records_parse_with_names_and_sequences() {
        let text = "@read1 extra\nACGTACGT\n+\nIIIIIIII\n@read2\nTTTT\n+read2\n@@@@\n";
        let path = write_tmp("basic.fq", text);
        let files = list_inputs(&[&path]).unwrap();
        let got = collect_all(&files, 0, 1, 11);
        assert_eq!(
            ascii(&got),
            vec![
                ("read1 extra".to_string(), b"ACGTACGT".to_vec()),
                ("read2".to_string(), b"TTTT".to_vec()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fastq_quality_length_mismatch_is_rejected() {
        let path = write_tmp("bad.fq", "@r\nACGT\n+\nIII\n");
        let files = list_inputs(&[&path]).unwrap();
        let mut shard = ShardReader::open(&files, 0, 1, tiny_opts(64)).unwrap();
        let err = shard.next_batch().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ambiguous_runs_split_reads_into_fragments() {
        let text = ">r\nACGTNNNGGGG\nNNCCC\n>s\nNNNN\n>t\nACGT\n";
        let path = write_tmp("nsplit.fa", text);
        let files = list_inputs(&[&path]).unwrap();
        let got = collect_all(&files, 0, 1, 8);
        assert_eq!(
            ascii(&got),
            vec![
                ("r".to_string(), b"ACGT".to_vec()),
                ("r".to_string(), b"GGGG".to_vec()),
                ("r".to_string(), b"CCC".to_vec()),
                ("t".to_string(), b"ACGT".to_vec()),
            ]
        );
        // With a minimum fragment length, sub-threshold fragments are dropped.
        let mut shard = ShardReader::open(
            &files,
            0,
            1,
            IngestOptions {
                block_bytes: 8,
                batch_records: 100,
                min_fragment: 4,
            },
        )
        .unwrap();
        let mut long = Vec::new();
        while let Some(batch) = shard.next_batch().unwrap() {
            long.extend(batch);
        }
        assert_eq!(
            ascii(&long),
            vec![
                ("r".to_string(), b"ACGT".to_vec()),
                ("r".to_string(), b"GGGG".to_vec()),
                ("t".to_string(), b"ACGT".to_vec()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_records_produce_no_reads() {
        let path = write_tmp("empty.fa", ">empty\n>full\nACGT\n>also empty\n");
        let files = list_inputs(&[&path]).unwrap();
        let got = collect_all(&files, 0, 1, 64);
        assert_eq!(ascii(&got), vec![("full".to_string(), b"ACGT".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    /// Sharding invariant: for any rank count and block size, concatenating the
    /// shards in rank order reproduces the whole-file parse exactly once.
    #[test]
    fn shards_partition_fasta_records_exactly() {
        let mut text = String::new();
        for i in 0..37 {
            text.push_str(&format!(">read{i}\n"));
            let base = b"ACGT"[i % 4] as char;
            for _ in 0..(1 + i % 5) {
                text.push_str(&String::from(base).repeat(5 + (i * 7) % 23));
                text.push('\n');
            }
        }
        let path = write_tmp("shards.fa", &text);
        let files = list_inputs(&[&path]).unwrap();
        let whole = ascii(&collect_all(&files, 0, 1, 4096));
        for ranks in [1usize, 2, 3, 5, 8, 13] {
            for block in [16, 61, 4096] {
                let mut merged = Vec::new();
                for rank in 0..ranks {
                    merged.extend(ascii(&collect_all(&files, rank, ranks, block)));
                }
                assert_eq!(merged, whole, "ranks {ranks} block {block}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shards_partition_fastq_records_exactly_despite_at_quality_lines() {
        // Quality lines made entirely of '@' (a legal Phred 31 score) are the
        // classic realignment trap.
        let mut text = String::new();
        for i in 0..29 {
            let len = 4 + (i * 3) % 17;
            let base = b"ACGT"[i % 4] as char;
            text.push_str(&format!(
                "@q{i}\n{}\n+\n{}\n",
                String::from(base).repeat(len),
                "@".repeat(len)
            ));
        }
        let path = write_tmp("shards.fq", &text);
        let files = list_inputs(&[&path]).unwrap();
        let whole = ascii(&collect_all(&files, 0, 1, 4096));
        assert_eq!(whole.len(), 29);
        for ranks in [2usize, 3, 7, 11] {
            for block in [16, 64] {
                let mut merged = Vec::new();
                for rank in 0..ranks {
                    merged.extend(ascii(&collect_all(&files, rank, ranks, block)));
                }
                assert_eq!(merged, whole, "ranks {ranks} block {block}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shards_span_multiple_files_without_crossing_records() {
        let fa = write_tmp("multi1.fa", ">a\nACGTACGT\n>b\nTTTT\n");
        let fq = write_tmp("multi2.fq", "@c\nGGGG\n+\nIIII\n@d\nCCCCCC\n+\nIIIIII\n");
        let fa2 = write_tmp("multi3.fa", ">e\nAAAA\n");
        let files = list_inputs(&[&fa, &fq, &fa2]).unwrap();
        let whole = ascii(&collect_all(&files, 0, 1, 4096));
        assert_eq!(whole.len(), 5);
        for ranks in [2usize, 4, 9] {
            let mut merged = Vec::new();
            for rank in 0..ranks {
                merged.extend(ascii(&collect_all(&files, rank, ranks, 16)));
            }
            assert_eq!(merged, whole, "ranks {ranks}");
        }
        for p in [fa, fq, fa2] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn ingestion_memory_is_bounded_by_block_not_file() {
        // A file much larger than the block: the reader's buffer must stay at
        // O(block + longest line), far below the file size.
        let mut text = String::new();
        for i in 0..500 {
            text.push_str(&format!(">r{i}\n{}\n", "ACGT".repeat(20)));
        }
        let path = write_tmp("bounded.fa", &text);
        assert!(text.len() > 40_000);
        let block = 256usize;
        let files = list_inputs(&[&path]).unwrap();
        let mut shard = ShardReader::open(&files, 0, 1, tiny_opts(block)).unwrap();
        let mut n = 0usize;
        while let Some(batch) = shard.next_batch().unwrap() {
            n += batch.len();
        }
        assert_eq!(n, 500);
        let longest_line = 81;
        assert!(
            shard.peak_buffer_bytes() <= 2 * block + longest_line,
            "buffer grew to {} bytes for a {} byte file",
            shard.peak_buffer_bytes(),
            text.len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shards_inside_one_huge_record_stop_at_their_boundary() {
        // A wrapped single-record reference FASTA much larger than any shard: ranks
        // whose range falls inside the record own nothing and must stop scanning at
        // their boundary instead of streaming the rest of the file hunting for a
        // header that never comes.
        let mut text = String::from(">chr1\n");
        for _ in 0..2_000 {
            text.push_str("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT\n");
        }
        let path = write_tmp("hugerecord.fa", &text);
        let files = list_inputs(&[&path]).unwrap();
        let block = 1_024usize;
        let ranks = 8usize;
        for rank in 1..ranks {
            let mut shard = ShardReader::open(&files, rank, ranks, tiny_opts(block)).unwrap();
            let mut n = 0usize;
            while let Some(batch) = shard.next_batch().unwrap() {
                n += batch.len();
            }
            assert_eq!(n, 0, "rank {rank} owns no record");
            let line = 62u64;
            assert!(
                shard.max_scan_past_end() <= 2 * line + block as u64,
                "rank {rank} scanned {} bytes past its boundary",
                shard.max_scan_past_end()
            );
        }
        // Rank 0 owns the record and legitimately reads it to the end.
        let mut owner = ShardReader::open(&files, 0, ranks, tiny_opts(block)).unwrap();
        let mut n = 0usize;
        while let Some(batch) = owner.next_batch().unwrap() {
            n += batch.len();
        }
        assert_eq!(n, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fastq_round_trips_through_writer_and_reader() {
        let rs = ReadSet::from_ascii_reads(&[
            b"ACGTACGTACGTACGT".as_slice(),
            b"TTTTGGGGCCCCAAAA".as_slice(),
        ]);
        let path = tmp_path("roundtrip.fq");
        write_fastq_file(&path, &rs).unwrap();
        let parsed = read_paths(&[&path], IngestOptions::default()).unwrap();
        assert_eq!(parsed.len(), rs.len());
        for (a, b) in parsed.iter().zip(rs.iter()) {
            assert_eq!(a.seq, b.seq);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lines_much_longer_than_the_block_parse_correctly() {
        // An unwrapped record whose single sequence line spans many refills: the
        // resumable newline search must still find the line boundaries exactly.
        let long = "ACGT".repeat(1_250); // 5000 chars, block 64
        let text = format!(">one\n{long}\n>two\nTTTT\n");
        let path = write_tmp("longline.fa", &text);
        let files = list_inputs(&[&path]).unwrap();
        let got = collect_all(&files, 0, 1, 64);
        assert_eq!(
            ascii(&got),
            vec![
                ("one".to_string(), long.as_bytes().to_vec()),
                ("two".to_string(), b"TTTT".to_vec()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        let path = write_tmp("crlf.fa", ">r\r\nACGT\r\nGGGG\r\n");
        let files = list_inputs(&[&path]).unwrap();
        let got = collect_all(&files, 0, 1, 7);
        assert_eq!(ascii(&got), vec![("r".to_string(), b"ACGTGGGG".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_format_is_reported() {
        let path = write_tmp("unknown.txt", "no sequences here\n");
        let err = list_inputs(&[&path]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_shards_on_tiny_inputs_are_fine() {
        let path = write_tmp("tinyshard.fa", ">only\nACGT\n");
        let files = list_inputs(&[&path]).unwrap();
        let mut merged = Vec::new();
        for rank in 0..32 {
            merged.extend(ascii(&collect_all(&files, rank, 32, 16)));
        }
        assert_eq!(merged, vec![("only".to_string(), b"ACGT".to_vec())]);
        std::fs::remove_file(&path).ok();
    }
}
