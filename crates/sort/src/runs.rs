//! Linear counting scan over sorted data.
//!
//! After sorting, equal k-mers occupy adjacent positions; a single linear scan yields
//! the multiplicity of every distinct k-mer (paper §3.1). These helpers are shared by
//! HySortK's counting stage and the KMC3-style baseline.

/// Call `f(key_index_range)` for every maximal run of equal keys in `data` (equality
/// judged by the `key` projection). Runs are visited in order.
pub fn for_each_sorted_run<T, K, F, G>(data: &[T], key: G, mut f: F)
where
    K: PartialEq,
    G: Fn(&T) -> K,
    F: FnMut(std::ops::Range<usize>),
{
    let n = data.len();
    let mut start = 0usize;
    while start < n {
        let k = key(&data[start]);
        let mut end = start + 1;
        while end < n && key(&data[end]) == k {
            end += 1;
        }
        f(start..end);
        start = end;
    }
}

/// Count the multiplicity of every distinct key in sorted `data`, returning
/// `(key, count)` pairs in sorted key order.
pub fn count_sorted_runs<T, K, G>(data: &[T], key: G) -> Vec<(K, u64)>
where
    K: PartialEq + Copy,
    G: Fn(&T) -> K,
{
    let mut out = Vec::new();
    for_each_sorted_run(data, &key, |range| {
        out.push((key(&data[range.start]), range.len() as u64));
    });
    out
}

/// Streaming two-pointer merge of the run boundaries of sorted `data` with a sorted
/// pre-counted `(key, count)` list (which may hold several entries per key; they are
/// summed on the fly). `emit(key, total, range)` is called once per distinct key in
/// ascending key order, where `total` is the run length plus all matching pre-counts
/// and `range` is the key's run inside `data` (empty for pre-only keys).
///
/// This is HySortK's "sort & count" inner loop with heavy-hitter kmerlist merging
/// fused in: no intermediate counted or merged vector is ever materialised, and the
/// range hands the caller the key's payload (e.g. extension records) as a slice of the
/// sorted array instead of a per-key allocation.
pub fn merge_runs_with_counts<T, K, G, F>(data: &[T], key: G, pre: &[(K, u64)], mut emit: F)
where
    K: Ord + Copy,
    G: Fn(&T) -> K,
    F: FnMut(K, u64, std::ops::Range<usize>),
{
    let n = data.len();
    let mut i = 0usize;
    let mut j = 0usize;
    while i < n || j < pre.len() {
        if i < n && (j >= pre.len() || key(&data[i]) <= pre[j].0) {
            // The next key comes from `data` (ties included): scan its run, then
            // absorb any matching pre entries (a no-op when data's key is smaller).
            let k0 = key(&data[i]);
            let mut end = i + 1;
            while end < n && key(&data[end]) == k0 {
                end += 1;
            }
            let mut total = (end - i) as u64;
            while j < pre.len() && pre[j].0 == k0 {
                total += pre[j].1;
                j += 1;
            }
            emit(k0, total, i..end);
            i = end;
        } else {
            // Pre-only key: sum its (possibly duplicated) entries.
            let k0 = pre[j].0;
            let mut total = 0u64;
            while j < pre.len() && pre[j].0 == k0 {
                total += pre[j].1;
                j += 1;
            }
            emit(k0, total, i..i);
        }
    }
}

/// Merge already-sorted lists into one sorted vector by *moving* the elements —
/// `O(n log k)` with a tournament tree over the list heads (exactly one comparison
/// per tree level per emitted element, cheaper than a binary heap's sift), no
/// comparison re-sort and no clones. Ties between lists break toward the lower list
/// index, matching a stable concatenate-then-sort of the lists in order.
///
/// The count-stage merges use this: per-task (and per-rank) outputs are each sorted
/// and hold disjoint key sets, so merging them is tree traversal, not another sort.
pub fn kway_merge_by_key<T, K, F>(lists: Vec<Vec<T>>, key: F) -> Vec<T>
where
    K: Ord + Copy,
    F: Fn(&T) -> K,
{
    let total: usize = lists.iter().map(Vec::len).sum();
    let k = lists.len();
    if k == 0 {
        return Vec::new();
    }
    if k == 1 {
        return lists.into_iter().next().expect("one list");
    }

    let mut iters: Vec<std::vec::IntoIter<T>> = lists.into_iter().map(Vec::into_iter).collect();
    let m = k.next_power_of_two();
    // Current head of every (conceptual) leaf; `None` = exhausted (+infinity). The
    // keys are cached so a comparison never touches the items themselves.
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(Iterator::next).collect();
    heads.resize_with(m, || None);
    let mut keys: Vec<Option<K>> = heads.iter().map(|h| h.as_ref().map(&key)).collect();

    // Winner tree over leaf indices: node `i` holds the winning leaf of its subtree,
    // leaves live at `m..2m`. Lower leaf index wins ties (left child is checked first),
    // which reproduces the stable order.
    let better = |a: u32, b: u32, keys: &[Option<K>]| -> u32 {
        match (&keys[a as usize], &keys[b as usize]) {
            (Some(ka), Some(kb)) => {
                if kb < ka {
                    b
                } else {
                    a
                }
            }
            (None, Some(_)) => b,
            _ => a,
        }
    };
    let mut win: Vec<u32> = vec![0; 2 * m];
    for (j, w) in win.iter_mut().enumerate().skip(m) {
        *w = (j - m) as u32;
    }
    for i in (1..m).rev() {
        win[i] = better(win[2 * i], win[2 * i + 1], &keys);
    }

    let mut out = Vec::with_capacity(total);
    loop {
        let w = win[1] as usize;
        let Some(item) = heads[w].take() else {
            break; // overall winner exhausted -> every list is drained
        };
        out.push(item);
        heads[w] = iters[w].next();
        keys[w] = heads[w].as_ref().map(&key);
        // Replay only the path from this leaf to the root.
        let mut i = (m + w) >> 1;
        while i >= 1 {
            win[i] = better(win[2 * i], win[2 * i + 1], &keys);
            i >>= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_has_no_runs() {
        let data: Vec<u32> = vec![];
        assert!(count_sorted_runs(&data, |x| *x).is_empty());
    }

    #[test]
    fn counts_simple_runs() {
        let data = vec![1u32, 1, 2, 3, 3, 3, 9];
        assert_eq!(
            count_sorted_runs(&data, |x| *x),
            vec![(1, 2), (2, 1), (3, 3), (9, 1)]
        );
    }

    #[test]
    fn single_run_covers_everything() {
        let data = vec![5u8; 100];
        assert_eq!(count_sorted_runs(&data, |x| *x), vec![(5, 100)]);
    }

    #[test]
    fn run_ranges_partition_the_slice() {
        let data = vec![0u32, 0, 1, 2, 2, 2, 4, 4, 7];
        let mut covered = 0;
        let mut last_end = 0;
        for_each_sorted_run(
            &data,
            |x| *x,
            |r| {
                assert_eq!(r.start, last_end);
                last_end = r.end;
                covered += r.len();
            },
        );
        assert_eq!(covered, data.len());
    }

    #[test]
    fn works_with_projected_keys() {
        let data = vec![(1u32, 'a'), (1, 'b'), (2, 'c')];
        let runs = count_sorted_runs(&data, |x| x.0);
        assert_eq!(runs, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn merge_with_empty_pre_matches_plain_runs() {
        let data = vec![1u32, 1, 2, 3, 3, 3, 9];
        let mut merged = Vec::new();
        merge_runs_with_counts(&data, |x| *x, &[], |k, c, r| merged.push((k, c, r)));
        assert_eq!(
            merged,
            vec![(1, 2, 0..2), (2, 1, 2..3), (3, 3, 3..6), (9, 1, 6..7)]
        );
    }

    #[test]
    fn merge_interleaves_and_sums_duplicate_pre_entries() {
        let data = vec![2u32, 2, 5, 5, 5, 8];
        // Pre holds a key below, inside (duplicated), and above the data range.
        let pre = vec![(1u32, 4), (5, 10), (5, 1), (9, 7)];
        let mut merged = Vec::new();
        merge_runs_with_counts(&data, |x| *x, &pre, |k, c, r| merged.push((k, c, r)));
        assert_eq!(
            merged,
            vec![
                (1, 4, 0..0),
                (2, 2, 0..2),
                (5, 3 + 11, 2..5),
                (8, 1, 5..6),
                (9, 7, 6..6),
            ]
        );
    }

    #[test]
    fn merge_with_empty_data_emits_summed_pre_runs() {
        let data: Vec<u32> = Vec::new();
        let pre = vec![(3u32, 1), (3, 2), (7, 5)];
        let mut merged = Vec::new();
        merge_runs_with_counts(&data, |x| *x, &pre, |k, c, r| merged.push((k, c, r)));
        assert_eq!(merged, vec![(3, 3, 0..0), (7, 5, 0..0)]);
    }

    #[test]
    fn kway_merge_matches_stable_concat_sort() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..30 {
            let lists: Vec<Vec<(u32, char)>> = (0..rng.gen_range(0..6usize))
                .map(|l| {
                    let mut v: Vec<(u32, char)> = (0..rng.gen_range(0..30usize))
                        .map(|_| (rng.gen_range(0..40u32), (b'a' + l as u8) as char))
                        .collect();
                    v.sort_by_key(|x| x.0);
                    v
                })
                .collect();
            let mut expected: Vec<(u32, char)> = lists.iter().flatten().copied().collect();
            expected.sort_by_key(|x| x.0); // stable: ties keep list order
            assert_eq!(kway_merge_by_key(lists, |x| x.0), expected);
        }
    }

    #[test]
    fn kway_merge_of_nothing_is_empty() {
        assert!(kway_merge_by_key(Vec::<Vec<u32>>::new(), |x| *x).is_empty());
        assert!(kway_merge_by_key(vec![Vec::<u32>::new(); 3], |x| *x).is_empty());
    }

    #[test]
    fn merge_matches_map_reference_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let mut data: Vec<u16> = (0..rng.gen_range(0..60))
                .map(|_| rng.gen_range(0..12))
                .collect();
            data.sort_unstable();
            let mut pre: Vec<(u16, u64)> = (0..rng.gen_range(0..20))
                .map(|_| (rng.gen_range(0..12u16), rng.gen_range(1..5u64)))
                .collect();
            pre.sort_unstable();
            let mut expected: std::collections::BTreeMap<u16, u64> =
                std::collections::BTreeMap::new();
            for &d in &data {
                *expected.entry(d).or_insert(0) += 1;
            }
            for &(k, c) in &pre {
                *expected.entry(k).or_insert(0) += c;
            }
            let mut merged: Vec<(u16, u64)> = Vec::new();
            let mut covered = Vec::new();
            merge_runs_with_counts(
                &data,
                |x| *x,
                &pre,
                |k, c, r| {
                    merged.push((k, c));
                    covered.extend(r);
                },
            );
            assert_eq!(merged, expected.into_iter().collect::<Vec<_>>());
            // Every data index is covered exactly once, in order.
            assert_eq!(covered, (0..data.len()).collect::<Vec<_>>());
        }
    }
}
