//! Linear counting scan over sorted data.
//!
//! After sorting, equal k-mers occupy adjacent positions; a single linear scan yields
//! the multiplicity of every distinct k-mer (paper §3.1). These helpers are shared by
//! HySortK's counting stage and the KMC3-style baseline.

/// Call `f(key_index_range)` for every maximal run of equal keys in `data` (equality
/// judged by the `key` projection). Runs are visited in order.
pub fn for_each_sorted_run<T, K, F, G>(data: &[T], key: G, mut f: F)
where
    K: PartialEq,
    G: Fn(&T) -> K,
    F: FnMut(std::ops::Range<usize>),
{
    let n = data.len();
    let mut start = 0usize;
    while start < n {
        let k = key(&data[start]);
        let mut end = start + 1;
        while end < n && key(&data[end]) == k {
            end += 1;
        }
        f(start..end);
        start = end;
    }
}

/// Count the multiplicity of every distinct key in sorted `data`, returning
/// `(key, count)` pairs in sorted key order.
pub fn count_sorted_runs<T, K, G>(data: &[T], key: G) -> Vec<(K, u64)>
where
    K: PartialEq + Copy,
    G: Fn(&T) -> K,
{
    let mut out = Vec::new();
    for_each_sorted_run(data, &key, |range| {
        out.push((key(&data[range.start]), range.len() as u64));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_has_no_runs() {
        let data: Vec<u32> = vec![];
        assert!(count_sorted_runs(&data, |x| *x).is_empty());
    }

    #[test]
    fn counts_simple_runs() {
        let data = vec![1u32, 1, 2, 3, 3, 3, 9];
        assert_eq!(
            count_sorted_runs(&data, |x| *x),
            vec![(1, 2), (2, 1), (3, 3), (9, 1)]
        );
    }

    #[test]
    fn single_run_covers_everything() {
        let data = vec![5u8; 100];
        assert_eq!(count_sorted_runs(&data, |x| *x), vec![(5, 100)]);
    }

    #[test]
    fn run_ranges_partition_the_slice() {
        let data = vec![0u32, 0, 1, 2, 2, 2, 4, 4, 7];
        let mut covered = 0;
        let mut last_end = 0;
        for_each_sorted_run(
            &data,
            |x| *x,
            |r| {
                assert_eq!(r.start, last_end);
                last_end = r.end;
                covered += r.len();
            },
        );
        assert_eq!(covered, data.len());
    }

    #[test]
    fn works_with_projected_keys() {
        let data = vec![(1u32, 'a'), (1, 'b'), (2, 'c')];
        let runs = count_sorted_runs(&data, |x| x.0);
        assert_eq!(runs, vec![(1, 2), (2, 1)]);
    }
}
