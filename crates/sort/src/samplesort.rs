//! Comparison-based parallel sample sort.
//!
//! The paper notes that the newest kmerind offers a *sample-sort* based counting mode
//! and that it is slower than both its hash-table mode and HySortK's radix approach
//! (§3.1). This module implements that strategy so the comparison point can be
//! reproduced: sample splitters, partition into per-splitter buckets, sort buckets in
//! parallel with a comparison sort, and concatenate.

use rayon::prelude::*;

/// Oversampling factor: splitter candidates per output bucket.
const OVERSAMPLE: usize = 16;
const PARALLEL_THRESHOLD: usize = 4 * 1024;

/// Sort `data` in place by the key extracted by `key`, using sample sort with
/// `buckets` partitions (typically the number of worker threads).
pub fn sample_sort_by_key<T, K, F>(data: &mut [T], buckets: usize, key: F)
where
    T: Copy + Send + Sync,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n <= PARALLEL_THRESHOLD || buckets <= 1 {
        data.sort_unstable_by_key(|x| key(x));
        return;
    }

    // ---- splitter selection -----------------------------------------------------------
    // Deterministic systematic sample (every n / (buckets * OVERSAMPLE)-th element);
    // deterministic sampling keeps the sort reproducible across runs.
    let sample_size = (buckets * OVERSAMPLE).min(n);
    let stride = (n / sample_size).max(1);
    let mut sample: Vec<K> = (0..sample_size)
        .map(|i| key(&data[(i * stride).min(n - 1)]))
        .collect();
    sample.sort_unstable();
    let splitters: Vec<K> = (1..buckets)
        .map(|b| sample[b * sample.len() / buckets])
        .collect();

    // ---- classification ----------------------------------------------------------------
    // Each input chunk classifies its items into `buckets` local vectors, which are then
    // concatenated bucket-major — this is the all-to-all of a distributed sample sort,
    // done in shared memory.
    let classified: Vec<Vec<Vec<T>>> = data
        .par_chunks(64 * 1024)
        .map(|chunk| {
            let mut local: Vec<Vec<T>> = vec![Vec::new(); buckets];
            for item in chunk {
                let b = splitters.partition_point(|s| *s <= key(item));
                local[b].push(*item);
            }
            local
        })
        .collect();

    // ---- gather buckets and sort them in parallel --------------------------------------
    let mut bucket_data: Vec<Vec<T>> = vec![Vec::new(); buckets];
    for local in classified {
        for (b, mut items) in local.into_iter().enumerate() {
            bucket_data[b].append(&mut items);
        }
    }
    bucket_data
        .par_iter_mut()
        .for_each(|bucket| bucket.sort_unstable_by_key(|x| key(x)));

    // ---- concatenate back into the input slice -----------------------------------------
    let mut offset = 0;
    for bucket in bucket_data {
        data[offset..offset + bucket.len()].copy_from_slice(&bucket);
        offset += bucket.len();
    }
    debug_assert_eq!(offset, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_random_u64() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u64> = (0..100_000).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        sample_sort_by_key(&mut v, 8, |x| *x);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_small_inputs_via_fallback() {
        let mut v: Vec<u32> = vec![5, 3, 9, 1];
        sample_sort_by_key(&mut v, 4, |x| *x);
        assert_eq!(v, vec![1, 3, 5, 9]);
    }

    #[test]
    fn sorts_highly_skewed_input() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut v: Vec<u64> = (0..50_000)
            .map(|_| if rng.gen_bool(0.8) { 42 } else { rng.gen() })
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        sample_sort_by_key(&mut v, 8, |x| *x);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_by_extracted_key() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut v: Vec<(u64, u64)> = (0..30_000).map(|i| (rng.gen(), i)).collect();
        sample_sort_by_key(&mut v, 6, |x| x.0);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(v.len(), 30_000);
    }

    #[test]
    fn agrees_with_radix_sorts() {
        let mut rng = StdRng::seed_from_u64(24);
        let original: Vec<u64> = (0..60_000).map(|_| rng.gen()).collect();
        let mut a = original.clone();
        let mut b = original;
        sample_sort_by_key(&mut a, 8, |x| *x);
        crate::raduls_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(a, b);
    }
}
