//! Out-of-place LSD parallel radix sort (RADULS-like).
//!
//! RADULS (Kokot et al., BDAS 2017) trades memory for speed: it keeps an auxiliary
//! buffer the size of the input and performs stable least-significant-digit passes with
//! per-chunk histograms so that every thread scatters into its own pre-computed,
//! disjoint destination ranges. This implementation follows that structure:
//!
//! 1. one parallel pass computes the digit histograms of **all** levels at once,
//! 2. levels whose histogram is concentrated in a single bucket are skipped entirely
//!    (for k-mers the leading bytes beyond `2k` bits are always zero),
//! 3. each remaining level performs a stable parallel scatter between the ping-pong
//!    buffers, with the (chunk × bucket) destination ranges carved into disjoint
//!    sub-slices so the scatter needs no synchronisation and no `unsafe`.

use rayon::prelude::*;

use crate::{radix_digit, RadixKey};

const RADIX: usize = 256;
const PARALLEL_THRESHOLD: usize = 8 * 1024;
const CHUNK: usize = 64 * 1024;
/// `CHUNK` as a shift, used to map a destination offset to its chunk index. The fused
/// next-pass histogram binning computes `off >> CHUNK_SHIFT` where `src.chunks(CHUNK)`
/// defines the chunk boundaries — equivalent only while `CHUNK` is a power of two.
const CHUNK_SHIFT: usize = CHUNK.trailing_zeros() as usize;
const _: () = assert!(
    CHUNK.is_power_of_two(),
    "CHUNK_SHIFT mapping requires a power of two"
);

/// Sort `data` by the radix digits supplied by `digit`, using an auxiliary buffer of the
/// same length. `digit(item, 0)` is the most significant digit; the sort is stable.
pub fn raduls_sort_by<T, F>(data: &mut [T], levels: usize, digit: F)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, usize) -> u8 + Sync,
{
    let n = data.len();
    if n <= 1 || levels == 0 {
        return;
    }

    // ---- Pass 0: histograms of every level in one sweep ------------------------------
    let histograms = all_level_histograms(data, levels, &digit);

    // Levels where all items share one digit value contribute nothing to the order.
    let active_levels: Vec<usize> = (0..levels)
        .filter(|&l| !histograms[l].contains(&n))
        .collect();
    if active_levels.is_empty() {
        return;
    }

    let mut aux: Vec<T> = vec![T::default(); n];
    let mut src_is_data = true;

    // LSD: least significant active level first.
    for &level in active_levels.iter().rev() {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_data {
                (&*data, &mut aux[..])
            } else {
                (&aux[..], &mut *data)
            };
            scatter_level(src, dst, level, &digit);
        }
        src_is_data = !src_is_data;
    }

    // Make sure the result ends up in `data`.
    if !src_is_data {
        data.copy_from_slice(&aux);
    }
}

fn all_level_histograms<T, F>(data: &[T], levels: usize, digit: &F) -> Vec<Vec<usize>>
where
    T: Copy + Send + Sync,
    F: Fn(&T, usize) -> u8 + Sync,
{
    // Level-outer per chunk: each level's inner loop runs over the whole chunk with a
    // single 256-entry histogram hot in cache, instead of touching all `levels`
    // histograms per item.
    let fold = |mut hists: Vec<Vec<usize>>, chunk: &[T]| {
        for (l, hist) in hists.iter_mut().enumerate() {
            for item in chunk {
                hist[digit(item, l) as usize] += 1;
            }
        }
        hists
    };
    let identity = || vec![vec![0usize; RADIX]; levels];
    if data.len() < PARALLEL_THRESHOLD {
        return fold(identity(), data);
    }
    data.par_chunks(CHUNK)
        .fold(identity, fold)
        .reduce(identity, |mut a, b| {
            for (ha, hb) in a.iter_mut().zip(b) {
                for (x, y) in ha.iter_mut().zip(hb) {
                    *x += y;
                }
            }
            a
        })
}

/// One stable counting-sort pass from `src` to `dst` on `level`.
fn scatter_level<T, F>(src: &[T], dst: &mut [T], level: usize, digit: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, usize) -> u8 + Sync,
{
    let n = src.len();
    if n < PARALLEL_THRESHOLD {
        // Serial stable counting sort.
        let mut hist = [0usize; RADIX];
        for item in src {
            hist[digit(item, level) as usize] += 1;
        }
        let mut offsets = [0usize; RADIX];
        let mut acc = 0;
        for b in 0..RADIX {
            offsets[b] = acc;
            acc += hist[b];
        }
        for item in src {
            let b = digit(item, level) as usize;
            dst[offsets[b]] = *item;
            offsets[b] += 1;
        }
        return;
    }

    // ---- per-chunk histograms --------------------------------------------------------
    let chunks: Vec<&[T]> = src.chunks(CHUNK).collect();
    let chunk_hists: Vec<[usize; RADIX]> = chunks
        .par_iter()
        .map(|chunk| {
            let mut hist = [0usize; RADIX];
            for item in *chunk {
                hist[digit(item, level) as usize] += 1;
            }
            hist
        })
        .collect();

    // ---- destination offset for every (bucket, chunk) pair ---------------------------
    // Stable order: bucket-major, then chunk index, then original order inside the chunk.
    let num_chunks = chunks.len();
    let mut offsets = vec![0usize; num_chunks * RADIX]; // [chunk][bucket]
    let mut acc = 0usize;
    for b in 0..RADIX {
        for (c, hist) in chunk_hists.iter().enumerate() {
            offsets[c * RADIX + b] = acc;
            acc += hist[b];
        }
    }
    debug_assert_eq!(acc, n);

    // ---- carve dst into disjoint (chunk, bucket) destination sub-slices --------------
    struct Dest {
        chunk: usize,
        bucket: usize,
        start: usize,
        len: usize,
    }
    let mut dests: Vec<Dest> = Vec::with_capacity(num_chunks * RADIX);
    for c in 0..num_chunks {
        for b in 0..RADIX {
            let len = chunk_hists[c][b];
            if len > 0 {
                dests.push(Dest {
                    chunk: c,
                    bucket: b,
                    start: offsets[c * RADIX + b],
                    len,
                });
            }
        }
    }
    dests.sort_by_key(|d| d.start);

    let mut per_chunk_slices: Vec<Vec<(usize, &mut [T])>> =
        (0..num_chunks).map(|_| Vec::new()).collect();
    {
        let mut rest: &mut [T] = dst;
        let mut consumed = 0usize;
        for d in &dests {
            debug_assert_eq!(d.start, consumed);
            let (head, tail) = rest.split_at_mut(d.len);
            per_chunk_slices[d.chunk].push((d.bucket, head));
            rest = tail;
            consumed += d.len;
        }
        debug_assert_eq!(consumed, n);
    }

    // ---- parallel scatter: each chunk writes only into its own sub-slices ------------
    chunks
        .into_par_iter()
        .zip(per_chunk_slices.into_par_iter())
        .for_each(|(chunk, mut slices)| {
            // Index the chunk's destination slices by bucket.
            let mut by_bucket: [Option<(usize, &mut [T])>; RADIX] = std::array::from_fn(|_| None);
            for (bucket, slice) in slices.drain(..) {
                by_bucket[bucket] = Some((0, slice));
            }
            for item in chunk {
                let b = digit(item, level) as usize;
                let entry = by_bucket[b].as_mut().expect("histogram covers every digit");
                entry.1[entry.0] = *item;
                entry.0 += 1;
            }
        });
}

// =======================================================================================
// Monomorphized RadixKey kernel
// =======================================================================================

/// Stable out-of-place LSD radix sort for [`RadixKey`] types — the pipeline's hot path.
///
/// Same ping-pong structure as [`raduls_sort_by`], but engineered for throughput:
///
/// * digit extraction is a compile-time shift/mask on the raw key words
///   ([`radix_digit`]) instead of a per-item-per-level callback;
/// * per-chunk histograms are `[u32; 256]` (a quarter of the cache footprint of the
///   `usize` histograms, exact because chunks hold ≤ 64 Ki items), and the histograms of
///   pass `i + 1` are counted *during* the scatter of pass `i`, so after the first
///   level every pass reads the data exactly once instead of twice;
/// * the scatter writes through precomputed per-(chunk, bucket) destination cursors via
///   raw pointers, removing the bounds checks and per-item `Option` lookups of the safe
///   sub-slice carving;
/// * below the parallel threshold the global per-level histograms from the fused
///   sizing pass drive the scatter cursors directly — small sorts do one counting pass
///   total, not one per level.
///
/// Trivial levels (constant digit across the input — e.g. the zero padding above a
/// `2k`-bit k-mer) are detected in one fused histogram pass and skipped.
pub fn raduls_sort<T: RadixKey + Default>(data: &mut [T]) {
    let mut aux = Vec::new();
    raduls_sort_with_aux(data, &mut aux);
}

/// [`raduls_sort`] with a caller-owned auxiliary buffer, so a worker sorting many
/// arrays (one per task) reuses one ping-pong allocation instead of mapping fresh
/// pages per sort. `aux` is grown to `data.len()` on first use and its contents are
/// unspecified afterwards.
pub fn raduls_sort_with_aux<T: RadixKey + Default>(data: &mut [T], aux: &mut Vec<T>) {
    let n = data.len();
    let levels = T::KEY_LEVELS;
    if n <= 1 || levels == 0 {
        return;
    }

    if aux.len() < n {
        aux.resize(n, T::default());
    }
    let aux = &mut aux[..n];
    let mut src_is_data = true;

    if n < PARALLEL_THRESHOLD {
        // One fused counting pass; the digit multiset is invariant under permutation,
        // so the same histograms give every level's cursors without recounting.
        let mut histograms = vec![[0u32; RADIX]; levels];
        bin_all_levels(data, &mut histograms);
        let order: Vec<usize> = (0..levels)
            .rev()
            .filter(|&l| !histograms[l].iter().any(|&c| c as usize == n))
            .collect();
        for &level in &order {
            let (src, dst): (&[T], &mut [T]) = if src_is_data {
                (&*data, &mut aux[..])
            } else {
                (&aux[..], &mut *data)
            };
            let mut cursors = [0usize; RADIX];
            let mut acc = 0usize;
            for (cursor, &count) in cursors.iter_mut().zip(&histograms[level]) {
                *cursor = acc;
                acc += count as usize;
            }
            let dst_ptr = dst.as_mut_ptr();
            for item in src {
                let b = radix_digit(item, level) as usize;
                // SAFETY: `cursors` holds the exclusive prefix sums of the digit
                // histogram of `src`, so over the loop each index in `0..n` is written
                // exactly once and `cursors[b] < n` at every write.
                unsafe { dst_ptr.add(cursors[b]).write(*item) };
                cursors[b] += 1;
            }
            src_is_data = !src_is_data;
        }
    } else {
        // One fused parallel pass produces the per-chunk histograms of *every* level;
        // the global sums select the active levels, `per_chunk[·][first]` seeds the
        // first scatter, and each scatter counts the next level's chunk histograms on
        // the fly — so no pass over the data is ever a histogram-only pass.
        let per_chunk: Vec<Vec<[u32; RADIX]>> = data
            .par_chunks(CHUNK)
            .map(|chunk| {
                let mut hists = vec![[0u32; RADIX]; levels];
                bin_all_levels(chunk, &mut hists);
                hists
            })
            .collect();
        let order: Vec<usize> = (0..levels)
            .rev()
            .filter(|&l| {
                let mut totals = [0usize; RADIX];
                for chunk_hists in &per_chunk {
                    for (t, &c) in totals.iter_mut().zip(&chunk_hists[l]) {
                        *t += c as usize;
                    }
                }
                !totals.contains(&n)
            })
            .collect();
        if !order.is_empty() {
            let mut chunk_hists: Vec<[u32; RADIX]> =
                per_chunk.iter().map(|hists| hists[order[0]]).collect();
            drop(per_chunk);
            for (i, &level) in order.iter().enumerate() {
                let (src, dst): (&[T], &mut [T]) = if src_is_data {
                    (&*data, &mut aux[..])
                } else {
                    (&aux[..], &mut *data)
                };
                chunk_hists =
                    scatter_pass(src, dst, level, &chunk_hists, order.get(i + 1).copied());
                src_is_data = !src_is_data;
            }
        }
    }

    if !src_is_data {
        data.copy_from_slice(aux);
    }
}

/// Bin every level of every item into `hists` in one sweep: the key words of each item
/// are loaded once and all their bytes are binned, so the pass is bound by one read of
/// the input rather than one read per level.
#[inline]
fn bin_all_levels<T: RadixKey>(chunk: &[T], hists: &mut [[u32; RADIX]]) {
    for item in chunk {
        for w in 0..T::KEY_WORDS {
            let word = item.key_word(w);
            // Fixed-bound inner loop over the 8 bytes of one register; the compiler
            // unrolls it into straight-line shift/mask increments.
            for b in 0..8 {
                hists[8 * w + b][((word >> ((7 - b) * 8)) & 0xFF) as usize] += 1;
            }
        }
    }
}

/// Shareable raw destination pointer for the parallel scatter. Safety rests on the
/// offset discipline in [`scatter_pass`]: every (chunk, bucket) writes into its own
/// disjoint index range of the destination.
struct DstPtr<T>(*mut T);

unsafe impl<T: Send> Send for DstPtr<T> {}
unsafe impl<T: Send> Sync for DstPtr<T> {}

/// One stable counting-sort pass from `src` to `dst` on `level`, monomorphized.
///
/// `cur_hists` are the per-chunk histograms of `level` over `src` (sliced out of the
/// fused sizing pass for the first level, produced by the previous `scatter_pass`
/// otherwise). While scattering, the pass counts the per-*destination*-chunk histograms
/// of `next_level`, so the following pass needs no histogram sweep of its own.
fn scatter_pass<T: RadixKey>(
    src: &[T],
    dst: &mut [T],
    level: usize,
    cur_hists: &[[u32; RADIX]],
    next_level: Option<usize>,
) -> Vec<[u32; RADIX]> {
    let n = src.len();
    debug_assert_eq!(n, dst.len());
    let chunks: Vec<&[T]> = src.chunks(CHUNK).collect();
    let num_chunks = chunks.len();
    debug_assert_eq!(num_chunks, cur_hists.len());

    // ---- per-(chunk, bucket) destination cursors -------------------------------------
    // Stable order: bucket-major, then chunk index, then original order inside a chunk.
    let mut starts: Vec<[usize; RADIX]> = vec![[0usize; RADIX]; num_chunks];
    let mut acc = 0usize;
    for b in 0..RADIX {
        for (chunk_starts, hist) in starts.iter_mut().zip(cur_hists) {
            chunk_starts[b] = acc;
            acc += hist[b] as usize;
        }
    }
    debug_assert_eq!(acc, n);

    // ---- parallel scatter through raw cursors, fused with next-level counting --------
    let dst_ptr = DstPtr(dst.as_mut_ptr());
    let zero_hists = || {
        if next_level.is_some() {
            vec![[0u32; RADIX]; num_chunks]
        } else {
            Vec::new()
        }
    };
    chunks
        .into_par_iter()
        .zip(starts.into_par_iter())
        .fold(zero_hists, |mut next_hists, (chunk, mut cursors)| {
            let dst_ptr = &dst_ptr;
            // SAFETY (both arms): `cursors[b]` starts at this (chunk, bucket)'s
            // exclusive bucket-major prefix offset and is bumped once per matching
            // item, so each chunk writes into `[starts[c][b], starts[c][b] +
            // cur_hists[c][b])` — ranges that are pairwise disjoint across all
            // (chunk, bucket) pairs and together partition `0..n`.
            match next_level {
                Some(next) => {
                    for item in chunk {
                        let b = radix_digit(item, level) as usize;
                        let off = cursors[b];
                        cursors[b] = off + 1;
                        unsafe { dst_ptr.0.add(off).write(*item) };
                        // The destination offset tells us which chunk of the *next*
                        // pass the item lands in; bin its next digit now.
                        // SAFETY: `off < n`, so `off >> CHUNK_SHIFT < num_chunks ==
                        // next_hists.len()`; the digit index is a `u8`.
                        unsafe {
                            next_hists.get_unchecked_mut(off >> CHUNK_SHIFT)
                                [radix_digit(item, next) as usize] += 1;
                        }
                    }
                }
                None => {
                    for item in chunk {
                        let b = radix_digit(item, level) as usize;
                        let off = cursors[b];
                        cursors[b] = off + 1;
                        unsafe { dst_ptr.0.add(off).write(*item) };
                    }
                }
            }
            next_hists
        })
        .reduce(zero_hists, |mut a, b| {
            for (ha, hb) in a.iter_mut().zip(b) {
                for (x, y) in ha.iter_mut().zip(hb) {
                    *x += y;
                }
            }
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sorts_u64(v: &mut Vec<u64>) {
        let mut expected = v.clone();
        expected.sort();
        raduls_sort_by(v, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(*v, expected);
    }

    #[test]
    fn sorts_empty_singleton_and_duplicates() {
        let mut v: Vec<u64> = vec![];
        check_sorts_u64(&mut v);
        let mut v = vec![7u64];
        check_sorts_u64(&mut v);
        let mut v = vec![3u64; 1000];
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_large_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u64> = (0..300_000).map(|_| rng.gen()).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_low_entropy_keys() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut v: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..=255u64)).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn odd_number_of_active_levels_lands_back_in_data() {
        // Keys confined to 3 bytes -> 3 active levels (odd), forcing the final copy-back.
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u64> = (0..60_000).map(|_| rng.gen::<u64>() & 0xFF_FFFF).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn stability_within_equal_keys() {
        // Stable: payload order inside equal keys must be preserved.
        let mut rng = StdRng::seed_from_u64(14);
        let mut v: Vec<(u16, u32)> = (0..50_000u32)
            .map(|i| (rng.gen_range(0..32u16), i))
            .collect();
        raduls_sort_by(&mut v, 2, |x, l| (x.0 >> (8 * (1 - l))) as u8);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn agrees_with_paradis_on_random_input() {
        let mut rng = StdRng::seed_from_u64(15);
        let original: Vec<u64> = (0..80_000).map(|_| rng.gen()).collect();
        let mut a = original.clone();
        let mut b = original;
        raduls_sort_by(&mut a, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        crate::paradis_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(a, b);
    }

    #[test]
    fn keyed_kernel_matches_closure_path_on_u64() {
        let mut rng = StdRng::seed_from_u64(16);
        for n in [0usize, 1, 100, 5_000, 150_000] {
            let original: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let mut a = original.clone();
            let mut b = original;
            raduls_sort(&mut a);
            raduls_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn keyed_kernel_sorts_u128_across_the_word_boundary() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u128> = (0..120_000).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        raduls_sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn keyed_kernel_is_stable_on_tagged_records() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut v: Vec<(u64, u32)> = (0..90_000u32)
            .map(|i| (rng.gen_range(0..64u64), i))
            .collect();
        raduls_sort(&mut v);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn keyed_kernel_skips_trivial_levels_and_copies_back() {
        // Keys confined to 3 low bytes: 13 trivial levels for u128, odd active count.
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<u128> = (0..60_000).map(|_| rng.gen::<u128>() & 0xFF_FFFF).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        raduls_sort(&mut v);
        assert_eq!(v, expected);
    }
}
