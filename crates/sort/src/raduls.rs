//! Out-of-place LSD parallel radix sort (RADULS-like).
//!
//! RADULS (Kokot et al., BDAS 2017) trades memory for speed: it keeps an auxiliary
//! buffer the size of the input and performs stable least-significant-digit passes with
//! per-chunk histograms so that every thread scatters into its own pre-computed,
//! disjoint destination ranges. This implementation follows that structure:
//!
//! 1. one parallel pass computes the digit histograms of **all** levels at once,
//! 2. levels whose histogram is concentrated in a single bucket are skipped entirely
//!    (for k-mers the leading bytes beyond `2k` bits are always zero),
//! 3. each remaining level performs a stable parallel scatter between the ping-pong
//!    buffers, with the (chunk × bucket) destination ranges carved into disjoint
//!    sub-slices so the scatter needs no synchronisation and no `unsafe`.

use rayon::prelude::*;

const RADIX: usize = 256;
const PARALLEL_THRESHOLD: usize = 8 * 1024;
const CHUNK: usize = 64 * 1024;

/// Sort `data` by the radix digits supplied by `digit`, using an auxiliary buffer of the
/// same length. `digit(item, 0)` is the most significant digit; the sort is stable.
pub fn raduls_sort_by<T, F>(data: &mut [T], levels: usize, digit: F)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, usize) -> u8 + Sync,
{
    let n = data.len();
    if n <= 1 || levels == 0 {
        return;
    }

    // ---- Pass 0: histograms of every level in one sweep ------------------------------
    let histograms = all_level_histograms(data, levels, &digit);

    // Levels where all items share one digit value contribute nothing to the order.
    let active_levels: Vec<usize> = (0..levels)
        .filter(|&l| !histograms[l].iter().any(|&c| c == n))
        .collect();
    if active_levels.is_empty() {
        return;
    }

    let mut aux: Vec<T> = vec![T::default(); n];
    let mut src_is_data = true;

    // LSD: least significant active level first.
    for &level in active_levels.iter().rev() {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_data {
                (&*data, &mut aux[..])
            } else {
                (&aux[..], &mut *data)
            };
            scatter_level(src, dst, level, &digit);
        }
        src_is_data = !src_is_data;
    }

    // Make sure the result ends up in `data`.
    if !src_is_data {
        data.copy_from_slice(&aux);
    }
}

fn all_level_histograms<T, F>(data: &[T], levels: usize, digit: &F) -> Vec<Vec<usize>>
where
    T: Copy + Send + Sync,
    F: Fn(&T, usize) -> u8 + Sync,
{
    let fold = |mut hists: Vec<Vec<usize>>, chunk: &[T]| {
        for item in chunk {
            for (l, hist) in hists.iter_mut().enumerate() {
                hist[digit(item, l) as usize] += 1;
            }
        }
        hists
    };
    let identity = || vec![vec![0usize; RADIX]; levels];
    if data.len() < PARALLEL_THRESHOLD {
        return fold(identity(), data);
    }
    data.par_chunks(CHUNK)
        .fold(identity, |acc, chunk| fold(acc, chunk))
        .reduce(identity, |mut a, b| {
            for (ha, hb) in a.iter_mut().zip(b) {
                for (x, y) in ha.iter_mut().zip(hb) {
                    *x += y;
                }
            }
            a
        })
}

/// One stable counting-sort pass from `src` to `dst` on `level`.
fn scatter_level<T, F>(src: &[T], dst: &mut [T], level: usize, digit: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, usize) -> u8 + Sync,
{
    let n = src.len();
    if n < PARALLEL_THRESHOLD {
        // Serial stable counting sort.
        let mut hist = [0usize; RADIX];
        for item in src {
            hist[digit(item, level) as usize] += 1;
        }
        let mut offsets = [0usize; RADIX];
        let mut acc = 0;
        for b in 0..RADIX {
            offsets[b] = acc;
            acc += hist[b];
        }
        for item in src {
            let b = digit(item, level) as usize;
            dst[offsets[b]] = *item;
            offsets[b] += 1;
        }
        return;
    }

    // ---- per-chunk histograms --------------------------------------------------------
    let chunks: Vec<&[T]> = src.chunks(CHUNK).collect();
    let chunk_hists: Vec<[usize; RADIX]> = chunks
        .par_iter()
        .map(|chunk| {
            let mut hist = [0usize; RADIX];
            for item in *chunk {
                hist[digit(item, level) as usize] += 1;
            }
            hist
        })
        .collect();

    // ---- destination offset for every (bucket, chunk) pair ---------------------------
    // Stable order: bucket-major, then chunk index, then original order inside the chunk.
    let num_chunks = chunks.len();
    let mut offsets = vec![0usize; num_chunks * RADIX]; // [chunk][bucket]
    let mut acc = 0usize;
    for b in 0..RADIX {
        for (c, hist) in chunk_hists.iter().enumerate() {
            offsets[c * RADIX + b] = acc;
            acc += hist[b];
        }
    }
    debug_assert_eq!(acc, n);

    // ---- carve dst into disjoint (chunk, bucket) destination sub-slices --------------
    struct Dest {
        chunk: usize,
        bucket: usize,
        start: usize,
        len: usize,
    }
    let mut dests: Vec<Dest> = Vec::with_capacity(num_chunks * RADIX);
    for c in 0..num_chunks {
        for b in 0..RADIX {
            let len = chunk_hists[c][b];
            if len > 0 {
                dests.push(Dest { chunk: c, bucket: b, start: offsets[c * RADIX + b], len });
            }
        }
    }
    dests.sort_by_key(|d| d.start);

    let mut per_chunk_slices: Vec<Vec<(usize, &mut [T])>> = (0..num_chunks).map(|_| Vec::new()).collect();
    {
        let mut rest: &mut [T] = dst;
        let mut consumed = 0usize;
        for d in &dests {
            debug_assert_eq!(d.start, consumed);
            let (head, tail) = rest.split_at_mut(d.len);
            per_chunk_slices[d.chunk].push((d.bucket, head));
            rest = tail;
            consumed += d.len;
        }
        debug_assert_eq!(consumed, n);
    }

    // ---- parallel scatter: each chunk writes only into its own sub-slices ------------
    chunks
        .into_par_iter()
        .zip(per_chunk_slices.into_par_iter())
        .for_each(|(chunk, mut slices)| {
            // Index the chunk's destination slices by bucket.
            let mut by_bucket: [Option<(usize, &mut [T])>; RADIX] = std::array::from_fn(|_| None);
            for (bucket, slice) in slices.drain(..) {
                by_bucket[bucket] = Some((0, slice));
            }
            for item in chunk {
                let b = digit(item, level) as usize;
                let entry = by_bucket[b].as_mut().expect("histogram covers every digit");
                entry.1[entry.0] = *item;
                entry.0 += 1;
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sorts_u64(v: &mut Vec<u64>) {
        let mut expected = v.clone();
        expected.sort();
        raduls_sort_by(v, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(*v, expected);
    }

    #[test]
    fn sorts_empty_singleton_and_duplicates() {
        let mut v: Vec<u64> = vec![];
        check_sorts_u64(&mut v);
        let mut v = vec![7u64];
        check_sorts_u64(&mut v);
        let mut v = vec![3u64; 1000];
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_large_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u64> = (0..300_000).map(|_| rng.gen()).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_low_entropy_keys() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut v: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..=255u64)).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn odd_number_of_active_levels_lands_back_in_data() {
        // Keys confined to 3 bytes -> 3 active levels (odd), forcing the final copy-back.
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u64> = (0..60_000).map(|_| rng.gen::<u64>() & 0xFF_FFFF).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn stability_within_equal_keys() {
        // Stable: payload order inside equal keys must be preserved.
        let mut rng = StdRng::seed_from_u64(14);
        let mut v: Vec<(u16, u32)> = (0..50_000u32).map(|i| (rng.gen_range(0..32u16), i)).collect();
        raduls_sort_by(&mut v, 2, |x, l| (x.0 >> (8 * (1 - l))) as u8);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn agrees_with_paradis_on_random_input() {
        let mut rng = StdRng::seed_from_u64(15);
        let original: Vec<u64> = (0..80_000).map(|_| rng.gen()).collect();
        let mut a = original.clone();
        let mut b = original;
        raduls_sort_by(&mut a, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        crate::paradis_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(a, b);
    }
}
