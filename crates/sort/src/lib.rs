//! Parallel radix sorting substrate.
//!
//! HySortK replaces the distributed hash table with "sort the receive buffer, then scan
//! it linearly" (paper §3.1). Two radix sorts are provided, mirroring the two the paper
//! uses, plus the comparison-based sample sort used by the kmerind sorting variant:
//!
//! * [`paradis::paradis_sort_by`] — an **in-place MSD** radix sort modelled on PARADIS
//!   (Cho et al., VLDB 2015): speculative parallel permutation into bucket stripes, a
//!   repair pass, then parallel recursion into buckets. Requires no auxiliary array, so
//!   it is the sorter HySortK falls back to when memory is tight.
//! * [`raduls::raduls_sort_by`] — an **out-of-place LSD** radix sort modelled on RADULS
//!   (Kokot et al., BDAS 2017): per-chunk histograms, stable parallel scatter between
//!   ping-pong buffers. Faster, but needs a second buffer of the same size.
//! * [`samplesort::sample_sort_by_key`] — a comparison-based parallel sample sort, the
//!   strategy the paper attributes to the sorting variant of kmerind.
//!
//! Two kinds of entry points are provided:
//!
//! * **Closure-generic**: the caller supplies the number of radix levels and a
//!   `digit(item, level) -> u8` closure with level 0 the **most significant** digit.
//!   This keeps the crate independent of the k-mer representation (k is a runtime
//!   value) and is what the baselines use.
//! * **Monomorphized kernels** ([`raduls::raduls_sort`], [`paradis::paradis_sort`]):
//!   for types implementing [`RadixKey`] — keys exposed as raw big-endian `u64` words —
//!   the digit loop compiles down to a shift/mask word access with no per-item-per-level
//!   indirection, and the RADULS kernel additionally uses compact per-chunk `u32`
//!   histograms and a precomputed-offset pointer scatter. These are the pipeline's hot
//!   paths.
//!
//! [`select_sorter`] reproduces HySortK's memory-aware choice between the two radix
//! sorts, and [`runs::count_sorted_runs`] is the linear counting scan applied after
//! sorting.

pub mod paradis;
pub mod raduls;
pub mod runs;
pub mod samplesort;

pub use paradis::{paradis_sort, paradis_sort_by, paradis_sort_from};
pub use raduls::{raduls_sort, raduls_sort_by, raduls_sort_with_aux};
pub use runs::{count_sorted_runs, for_each_sorted_run, kway_merge_by_key, merge_runs_with_counts};
pub use samplesort::sample_sort_by_key;

/// Keys that can expose themselves as raw big-endian `u64` words, enabling the
/// monomorphized radix kernels.
///
/// The logical key is the concatenation `key_word(0) ‖ key_word(1) ‖ …` compared as a
/// big integer; radix level `l` is byte `l` of that concatenation, most significant
/// first. Types whose meaningful bits occupy only the low end (e.g. a `2k`-bit k-mer in
/// `⌈k/32⌉` words) simply expose leading zero bytes — both kernels skip levels whose
/// digit is constant across the input, so the padding costs one histogram check, not a
/// scatter pass.
pub trait RadixKey: Copy + Send + Sync {
    /// Number of 64-bit key words, most significant first.
    const KEY_WORDS: usize;
    /// Total radix levels (bytes) in the key: `8 * KEY_WORDS`.
    const KEY_LEVELS: usize = 8 * Self::KEY_WORDS;
    /// The `w`-th key word (`w < KEY_WORDS`), most significant first.
    fn key_word(&self, w: usize) -> u64;
}

/// Branch-free digit extraction for [`RadixKey`] types: byte `level` of the
/// concatenated key words, most significant first.
#[inline(always)]
pub fn radix_digit<T: RadixKey>(item: &T, level: usize) -> u8 {
    (item.key_word(level >> 3) >> ((7 - (level & 7)) << 3)) as u8
}

impl RadixKey for u64 {
    const KEY_WORDS: usize = 1;
    #[inline(always)]
    fn key_word(&self, _w: usize) -> u64 {
        *self
    }
}

impl RadixKey for u32 {
    const KEY_WORDS: usize = 1;
    #[inline(always)]
    fn key_word(&self, _w: usize) -> u64 {
        u64::from(*self)
    }
}

impl RadixKey for u16 {
    const KEY_WORDS: usize = 1;
    #[inline(always)]
    fn key_word(&self, _w: usize) -> u64 {
        u64::from(*self)
    }
}

impl RadixKey for u128 {
    const KEY_WORDS: usize = 2;
    #[inline(always)]
    fn key_word(&self, w: usize) -> u64 {
        if w == 0 {
            (*self >> 64) as u64
        } else {
            *self as u64
        }
    }
}

/// Records sort by their first field; the payload rides along. This is how the pipeline
/// sorts `(k-mer, extension)` pairs without a closure in the inner loop.
impl<K: RadixKey, P: Copy + Send + Sync> RadixKey for (K, P) {
    const KEY_WORDS: usize = K::KEY_WORDS;
    #[inline(always)]
    fn key_word(&self, w: usize) -> u64 {
        self.0.key_word(w)
    }
}

/// Internal abstraction that lets one sorter implementation serve both the
/// closure-generic entry points and the monomorphized [`RadixKey`] kernels: each
/// instantiation monomorphizes the inner loops, so the `KeyDigits` path compiles to a
/// direct shift/mask with no closure in sight.
pub(crate) trait DigitSource<T>: Sync {
    fn digit(&self, item: &T, level: usize) -> u8;
}

pub(crate) struct ClosureDigits<F>(pub F);

impl<T, F: Fn(&T, usize) -> u8 + Sync> DigitSource<T> for ClosureDigits<F> {
    #[inline(always)]
    fn digit(&self, item: &T, level: usize) -> u8 {
        (self.0)(item, level)
    }
}

pub(crate) struct KeyDigits;

impl<T: RadixKey> DigitSource<T> for KeyDigits {
    #[inline(always)]
    fn digit(&self, item: &T, level: usize) -> u8 {
        radix_digit(item, level)
    }
}

/// Items with a fixed-width radix representation (convenience for tests and simple
/// payloads; the pipelines use the closure-based entry points directly).
pub trait RadixDigits: Copy + Send + Sync {
    /// Number of radix levels (bytes) in the key.
    const LEVELS: usize;
    /// The `level`-th byte of the key, level 0 = most significant.
    fn digit(&self, level: usize) -> u8;
}

impl RadixDigits for u64 {
    const LEVELS: usize = 8;
    #[inline]
    fn digit(&self, level: usize) -> u8 {
        (self >> (8 * (7 - level))) as u8
    }
}

impl RadixDigits for u32 {
    const LEVELS: usize = 4;
    #[inline]
    fn digit(&self, level: usize) -> u8 {
        (self >> (8 * (3 - level))) as u8
    }
}

/// Sort a slice of [`RadixDigits`] items in place with the PARADIS-like sorter.
pub fn radix_sort<T: RadixDigits>(data: &mut [T]) {
    paradis_sort_by(data, T::LEVELS, |x, l| x.digit(l));
}

/// Which sorting algorithm HySortK selects for the local counting stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SorterKind {
    /// Out-of-place LSD radix sort (RADULS-like) — faster, needs an auxiliary buffer.
    Raduls,
    /// In-place MSD radix sort (PARADIS-like) — slower, near-zero extra memory.
    Paradis,
}

/// Memory-aware sorter selection (paper §3.1): after the exchange phase each process
/// inspects the available memory; if an auxiliary buffer of `payload_bytes` (plus some
/// headroom) fits, the faster out-of-place sorter is used, otherwise the in-place one.
pub fn select_sorter(payload_bytes: usize, available_bytes: usize) -> SorterKind {
    // RADULS needs the auxiliary array plus per-thread histograms; 1.1× headroom keeps
    // the decision conservative, matching the paper's description of reading the system
    // state and switching only when clearly safe.
    let needed = payload_bytes + payload_bytes / 10;
    if available_bytes >= needed {
        SorterKind::Raduls
    } else {
        SorterKind::Paradis
    }
}

/// Sort with whichever algorithm [`select_sorter`] picked.
pub fn sort_with<T, F>(kind: SorterKind, data: &mut [T], levels: usize, digit: F)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, usize) -> u8 + Sync,
{
    match kind {
        SorterKind::Raduls => raduls_sort_by(data, levels, digit),
        SorterKind::Paradis => paradis_sort_by(data, levels, digit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_digits_are_msb_first() {
        let x: u64 = 0x0102030405060708;
        assert_eq!(x.digit(0), 0x01);
        assert_eq!(x.digit(7), 0x08);
    }

    #[test]
    fn selection_prefers_raduls_when_memory_allows() {
        assert_eq!(select_sorter(1_000_000, 10_000_000), SorterKind::Raduls);
        assert_eq!(select_sorter(1_000_000, 1_000_000), SorterKind::Paradis);
        assert_eq!(select_sorter(1_000_000, 0), SorterKind::Paradis);
    }

    #[test]
    fn radix_sort_convenience_sorts() {
        let mut v: Vec<u64> = (0..2000u64)
            .rev()
            .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sort_with_dispatches_both_kinds() {
        for kind in [SorterKind::Raduls, SorterKind::Paradis] {
            let mut v: Vec<u64> = (0..500u64)
                .map(|x| x.wrapping_mul(2654435761).rotate_left(7))
                .collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            sort_with(kind, &mut v, 8, RadixDigits::digit);
            assert_eq!(v, expected, "kind {kind:?}");
        }
    }
}
