//! In-place MSD parallel radix sort (PARADIS-like).
//!
//! PARADIS (Cho et al., VLDB 2015) sorts in place by partitioning the array into the
//! 256 destination buckets of the current digit with a *speculative* parallel
//! permutation — each thread owns one stripe of every bucket and permutes only within
//! its own stripes — followed by a *repair* pass that fixes the elements the speculation
//! could not place, and finally recurses into the buckets in parallel.
//!
//! This implementation follows that structure (stripe-parallel speculation, serial
//! repair, parallel recursion) without PARADIS's adaptive stripe rebalancing; the
//! speculative phase is written entirely with safe disjoint sub-slices obtained by
//! repeated `split_at_mut`.
//!
//! The monomorphized [`RadixKey`] kernel ([`paradis_sort`]) additionally replaces the
//! two-pass repair (collect misplaced positions, then cycle-follow) with a **single
//! serial finalisation pass**: an American-flag-style cycle chase that visits every slot
//! exactly once, skip-advances bucket heads past elements already home, and issues a
//! software prefetch for the next destination slot before chasing into it (the scatter
//! is a random walk over the whole slice, so nearly every hop is a cache miss without
//! it). Because the pass touches each element exactly once anyway, it also bins the
//! element's *next* radix digit on the fly, handing each child bucket its histogram for
//! free — the recursion skips an entire counting pass per level.

use rayon::prelude::*;

use crate::{radix_digit, ClosureDigits, DigitSource, KeyDigits, RadixKey};

const RADIX: usize = 256;
/// Below this length a comparison sort on the remaining digits is faster than another
/// radix pass.
const SMALL_SORT_THRESHOLD: usize = 128;
/// Work below this size is not worth another layer of rayon tasks.
const PARALLEL_THRESHOLD: usize = 8 * 1024;

/// Sort `data` in place by the radix digits supplied by `digit`.
///
/// * `levels` — number of radix digits; `digit(item, 0)` is the most significant.
/// * The sort is not stable (neither is PARADIS); k-mer counting only needs grouping.
pub fn paradis_sort_by<T, F>(data: &mut [T], levels: usize, digit: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, usize) -> u8 + Sync,
{
    if levels == 0 || data.len() <= 1 {
        return;
    }
    sort_level(data, 0, levels, &ClosureDigits(digit));
}

/// Monomorphized in-place MSD radix sort for [`RadixKey`] types: the digit loop is a
/// compile-time shift/mask on the raw key words instead of a callback, the permutation
/// is a prefetched single-pass cycle chase, and each level's scatter computes the next
/// level's bucket histograms as a side effect.
pub fn paradis_sort<T: RadixKey>(data: &mut [T]) {
    paradis_sort_from(data, 0);
}

/// Like [`paradis_sort`], but starting at `first_level`, skipping the leading key bytes
/// the caller knows to be constant (e.g. the zero padding above a `2k`-bit k-mer).
/// Skipped levels would be detected as single-bucket anyway, but each detection costs a
/// full histogram pass; the hint removes those passes.
pub fn paradis_sort_from<T: RadixKey>(data: &mut [T], first_level: usize) {
    let levels = T::KEY_LEVELS;
    if data.len() <= 1 || first_level >= levels {
        return;
    }
    sort_level_keyed(data, first_level, levels, None);
}

fn sort_level<T, D>(data: &mut [T], level: usize, levels: usize, digits: &D)
where
    T: Copy + Send + Sync,
    D: DigitSource<T>,
{
    if data.len() <= 1 || level >= levels {
        return;
    }
    if data.len() <= SMALL_SORT_THRESHOLD {
        comparison_sort_remaining(data, level, levels, digits);
        return;
    }

    // ---- Histogram of the current digit --------------------------------------------
    let histogram = parallel_histogram(data, level, digits);

    // If every element falls into one bucket this level is a no-op; recurse directly.
    if histogram.contains(&data.len()) {
        sort_level(data, level + 1, levels, digits);
        return;
    }

    // ---- Bucket boundaries ----------------------------------------------------------
    let mut bucket_start = [0usize; RADIX + 1];
    for b in 0..RADIX {
        bucket_start[b + 1] = bucket_start[b] + histogram[b];
    }

    // ---- Speculative parallel permutation + repair -----------------------------------
    permute_in_place(data, &bucket_start, level, digits);

    // ---- Parallel recursion into buckets ---------------------------------------------
    if level + 1 < levels {
        let mut buckets: Vec<&mut [T]> = Vec::with_capacity(RADIX);
        let mut rest = data;
        let mut prev = 0usize;
        for b in 0..RADIX {
            let len = bucket_start[b + 1] - prev;
            prev = bucket_start[b + 1];
            let (head, tail) = rest.split_at_mut(len);
            buckets.push(head);
            rest = tail;
        }
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        if total >= PARALLEL_THRESHOLD {
            buckets
                .into_par_iter()
                .for_each(|bucket| sort_level(bucket, level + 1, levels, digits));
        } else {
            for bucket in buckets {
                sort_level(bucket, level + 1, levels, digits);
            }
        }
    }
}

/// The [`RadixKey`]-specialised level sorter. Structurally the same MSD recursion as
/// [`sort_level`], with three kernel-level differences:
///
/// * `hint` carries the bucket histogram computed by the **parent** level's scatter, so
///   only the root level ever pays a standalone counting pass;
/// * the permutation is [`finalize_keyed`] — a prefetched single-pass cycle chase —
///   instead of speculation plus a two-pass repair;
/// * the small-slice cutoff compares whole keys word-by-word (valid because every
///   element in the slice agrees on all digits above `level`).
fn sort_level_keyed<T: RadixKey>(
    data: &mut [T],
    level: usize,
    levels: usize,
    hint: Option<&[usize]>,
) {
    if data.len() <= 1 || level >= levels {
        return;
    }
    if data.len() <= SMALL_SORT_THRESHOLD {
        comparison_sort_keyed(data);
        return;
    }

    let owned;
    let histogram: &[usize] = match hint {
        Some(h) => h,
        None => {
            owned = parallel_histogram(data, level, &KeyDigits);
            &owned
        }
    };
    if histogram.contains(&data.len()) {
        sort_level_keyed(data, level + 1, levels, None);
        return;
    }

    let mut bucket_start = [0usize; RADIX + 1];
    for b in 0..RADIX {
        bucket_start[b + 1] = bucket_start[b] + histogram[b];
    }

    let n = data.len();
    let threads = if n >= PARALLEL_THRESHOLD {
        rayon::current_num_threads().max(1)
    } else {
        1
    };
    if threads > 1 {
        speculate_stripes(data, &bucket_start, level, &KeyDigits, threads);
    }

    // Fused child histograms pay off when the children are big enough to need one; for
    // small inputs the 256×256 table costs more than the counting passes it saves.
    let fuse = level + 1 < levels && n >= PARALLEL_THRESHOLD;
    let mut child_hist = if fuse {
        vec![0usize; RADIX * RADIX]
    } else {
        Vec::new()
    };
    if fuse {
        finalize_keyed::<T, true>(data, &bucket_start, level, &mut child_hist);
    } else {
        finalize_keyed::<T, false>(data, &bucket_start, level, &mut child_hist);
    }

    if level + 1 < levels {
        let mut buckets: Vec<(&mut [T], Option<&[usize]>)> = Vec::with_capacity(RADIX);
        let mut rest = data;
        let mut prev = 0usize;
        for b in 0..RADIX {
            let len = bucket_start[b + 1] - prev;
            prev = bucket_start[b + 1];
            let (head, tail) = rest.split_at_mut(len);
            let hint = if fuse {
                Some(&child_hist[b * RADIX..(b + 1) * RADIX])
            } else {
                None
            };
            buckets.push((head, hint));
            rest = tail;
        }
        if n >= PARALLEL_THRESHOLD {
            buckets
                .into_par_iter()
                .for_each(|(bucket, hint)| sort_level_keyed(bucket, level + 1, levels, hint));
        } else {
            for (bucket, hint) in buckets {
                sort_level_keyed(bucket, level + 1, levels, hint);
            }
        }
    }
}

/// Comparison cutoff for the keyed kernel: elements in one recursion slice agree on all
/// digits above `level`, so comparing the full concatenated key words lexicographically
/// orders exactly by the remaining digits — one branchy `u64` compare per word instead
/// of up to eight digit extractions.
fn comparison_sort_keyed<T: RadixKey>(data: &mut [T]) {
    data.sort_unstable_by(|a, b| {
        for w in 0..T::KEY_WORDS {
            match a.key_word(w).cmp(&b.key_word(w)) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Prefetch the cache line holding `data[idx]` (no-op off x86_64, and on
/// out-of-bounds indices, which the chase can produce on its final hop).
#[inline(always)]
fn prefetch_slot<T>(data: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if idx < data.len() {
            // SAFETY: `idx` is in bounds; prefetch has no architectural effect beyond
            // the cache and is available on every x86_64 (SSE is baseline).
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    data.as_ptr().add(idx) as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, idx);
    }
}

/// Single-pass in-place bucket permutation for the keyed kernel (replaces the two-pass
/// collect-then-repair of the generic path): an American-flag cycle chase over bucket
/// heads.
///
/// Buckets are completed in ascending order, so while bucket `b` is being processed
/// every element with digit `< b` is already home; any foreign element found in `b`
/// therefore chases into a bucket `> b`, and by pigeonhole that bucket still has a
/// non-finalised slot for it. Each loop iteration finalises exactly one slot — the pass
/// is `O(n)` swaps total, each preceded by a prefetch of the next destination. When
/// `BIN` is set, every finalised element's next-level digit is counted into
/// `child_hist[bucket * RADIX + digit]`, which becomes the recursion's histogram hint.
fn finalize_keyed<T: RadixKey, const BIN: bool>(
    data: &mut [T],
    bucket_start: &[usize; RADIX + 1],
    level: usize,
    child_hist: &mut [usize],
) {
    let mut heads: [usize; RADIX] = [0; RADIX];
    heads.copy_from_slice(&bucket_start[..RADIX]);
    for b in 0..RADIX {
        let end_b = bucket_start[b + 1];
        while heads[b] < end_b {
            let hole = heads[b];
            let mut e = data[hole];
            let mut d = radix_digit(&e, level) as usize;
            if d == b {
                if BIN {
                    child_hist[(b << 8) | radix_digit(&e, level + 1) as usize] += 1;
                }
                heads[b] += 1;
                continue;
            }
            loop {
                // Elements already sitting in their home bucket are finalised in place.
                debug_assert!(heads[d] < bucket_start[d + 1]);
                while radix_digit(&data[heads[d]], level) as usize == d {
                    if BIN {
                        child_hist[(d << 8) | radix_digit(&data[heads[d]], level + 1) as usize] +=
                            1;
                    }
                    heads[d] += 1;
                    debug_assert!(heads[d] < bucket_start[d + 1]);
                }
                let dest = heads[d];
                let displaced = data[dest];
                data[dest] = e;
                if BIN {
                    child_hist[(d << 8) | radix_digit(&e, level + 1) as usize] += 1;
                }
                heads[d] += 1;
                e = displaced;
                d = radix_digit(&e, level) as usize;
                if d == b {
                    data[hole] = e;
                    if BIN {
                        child_hist[(b << 8) | radix_digit(&e, level + 1) as usize] += 1;
                    }
                    heads[b] += 1;
                    break;
                }
                prefetch_slot(data, heads[d]);
            }
        }
    }
}

fn comparison_sort_remaining<T, D>(data: &mut [T], level: usize, levels: usize, digits: &D)
where
    T: Copy,
    D: DigitSource<T>,
{
    data.sort_unstable_by(|a, b| {
        for l in level..levels {
            match digits.digit(a, l).cmp(&digits.digit(b, l)) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn parallel_histogram<T, D>(data: &[T], level: usize, digits: &D) -> Vec<usize>
where
    T: Copy + Send + Sync,
    D: DigitSource<T>,
{
    if data.len() < PARALLEL_THRESHOLD {
        let mut hist = vec![0usize; RADIX];
        for item in data {
            hist[digits.digit(item, level) as usize] += 1;
        }
        return hist;
    }
    data.par_chunks(64 * 1024)
        .map(|chunk| {
            let mut hist = vec![0usize; RADIX];
            for item in chunk {
                hist[digits.digit(item, level) as usize] += 1;
            }
            hist
        })
        .reduce(
            || vec![0usize; RADIX],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Partition `data` so that bucket `b` occupies `bucket_start[b]..bucket_start[b+1]`.
///
/// Phase 1 splits every bucket region into one stripe per rayon thread and lets each
/// thread permute within the stripes it owns (safe: the stripes are disjoint sub-slices).
/// Phase 2 serially repairs whatever the speculation could not place — the repair
/// workload is the sum of stripe imbalances, normally a small fraction of `n`.
fn permute_in_place<T, D>(
    data: &mut [T],
    bucket_start: &[usize; RADIX + 1],
    level: usize,
    digits: &D,
) where
    T: Copy + Send + Sync,
    D: DigitSource<T>,
{
    let n = data.len();
    let threads = if n >= PARALLEL_THRESHOLD {
        rayon::current_num_threads().max(1)
    } else {
        1
    };

    if threads > 1 {
        speculate_stripes(data, bucket_start, level, digits, threads);
    }

    // --- repair phase (also the whole permutation when running single stripe) --------
    // Collect, per bucket, the positions still holding a foreign element, then fix them
    // with cycle-following swaps. Each swap finalises at least one position.
    let mut misplaced: Vec<Vec<usize>> = vec![Vec::new(); RADIX];
    for b in 0..RADIX {
        let range = bucket_start[b]..bucket_start[b + 1];
        for (off, item) in data[range.clone()].iter().enumerate() {
            if digits.digit(item, level) as usize != b {
                misplaced[b].push(range.start + off);
            }
        }
    }
    let mut cursor = [0usize; RADIX];
    for b in 0..RADIX {
        for idx in 0..misplaced[b].len() {
            let pos = misplaced[b][idx];
            loop {
                let d = digits.digit(&data[pos], level) as usize;
                if d == b {
                    break;
                }
                // Find the next slot in bucket d that still holds a foreign element.
                let dest = misplaced[d][cursor[d]];
                cursor[d] += 1;
                data.swap(pos, dest);
            }
        }
    }
}

/// The speculative parallel phase shared by the closure and keyed permutations: each
/// rayon thread owns one stripe of every bucket region and permutes only within its own
/// stripes (safe: the stripes are disjoint sub-slices). Whatever the speculation cannot
/// place is fixed by the caller's serial pass.
fn speculate_stripes<T, D>(
    data: &mut [T],
    bucket_start: &[usize; RADIX + 1],
    level: usize,
    digits: &D,
    threads: usize,
) where
    T: Copy + Send + Sync,
    D: DigitSource<T>,
{
    let n = data.len();
    {
        // --- carve the slice into (thread, bucket) stripes --------------------------
        // stripe t of bucket b covers an equal share of the bucket's region.
        #[derive(Clone, Copy)]
        struct StripeMeta {
            start: usize,
            len: usize,
            bucket: usize,
            thread: usize,
        }
        let mut metas: Vec<StripeMeta> = Vec::with_capacity(threads * RADIX);
        for b in 0..RADIX {
            let start = bucket_start[b];
            let len = bucket_start[b + 1] - start;
            let per = len / threads;
            let mut off = start;
            for t in 0..threads {
                let this = if t + 1 == threads {
                    bucket_start[b + 1] - off
                } else {
                    per
                };
                metas.push(StripeMeta {
                    start: off,
                    len: this,
                    bucket: b,
                    thread: t,
                });
                off += this;
            }
        }
        metas.sort_by_key(|m| m.start);

        // Successive split_at_mut over the ordered, disjoint, covering stripes.
        let mut stripe_slices: Vec<(StripeMeta, &mut [T])> = Vec::with_capacity(metas.len());
        {
            let mut rest: &mut [T] = data;
            let mut consumed = 0usize;
            for m in &metas {
                debug_assert_eq!(m.start, consumed);
                let (head, tail) = rest.split_at_mut(m.len);
                stripe_slices.push((*m, head));
                rest = tail;
                consumed += m.len;
            }
            debug_assert_eq!(consumed, n);
        }

        // Group stripes per thread, indexed by bucket.
        let mut per_thread: Vec<Vec<Option<&mut [T]>>> = (0..threads)
            .map(|_| (0..RADIX).map(|_| None).collect())
            .collect();
        for (m, slice) in stripe_slices {
            per_thread[m.thread][m.bucket] = Some(slice);
        }

        // --- speculative phase -------------------------------------------------------
        per_thread.into_par_iter().for_each(|mut stripes| {
            let mut heads = [0usize; RADIX];
            for b in 0..RADIX {
                let mut i = heads[b];
                loop {
                    let len_b = stripes[b].as_ref().map_or(0, |s| s.len());
                    if i >= len_b {
                        break;
                    }
                    let e = stripes[b].as_ref().unwrap()[i];
                    let d = digits.digit(&e, level) as usize;
                    if d == b {
                        i += 1;
                        continue;
                    }
                    // Advance the destination head past elements already in place.
                    let len_d = stripes[d].as_ref().map_or(0, |s| s.len());
                    while heads[d] < len_d {
                        let v = stripes[d].as_ref().unwrap()[heads[d]];
                        if digits.digit(&v, level) as usize == d {
                            heads[d] += 1;
                        } else {
                            break;
                        }
                    }
                    if heads[d] < len_d {
                        // Swap the misplaced element into its destination stripe.
                        let incoming = stripes[d].as_ref().unwrap()[heads[d]];
                        stripes[d].as_mut().unwrap()[heads[d]] = e;
                        stripes[b].as_mut().unwrap()[i] = incoming;
                        heads[d] += 1;
                        // Re-examine position i with the incoming element.
                    } else {
                        // Destination stripe is full: leave for the repair phase.
                        i += 1;
                    }
                }
                heads[b] = heads[b].max(i);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sorts_u64(v: &mut Vec<u64>) {
        let mut expected = v.clone();
        expected.sort_unstable();
        paradis_sort_by(v, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(*v, expected);
    }

    #[test]
    fn sorts_empty_and_singleton() {
        let mut v: Vec<u64> = vec![];
        check_sorts_u64(&mut v);
        let mut v = vec![42u64];
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_small_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u64> = (0..100).map(|_| rng.gen()).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_large_random() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u64> = (0..200_000).map(|_| rng.gen()).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_skewed_distribution() {
        // Heavy-hitter-like input: 90 % of the items share one value.
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100_000)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    0xDEADBEEF
                } else {
                    rng.gen()
                }
            })
            .collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let mut v: Vec<u64> = (0..50_000).collect();
        check_sorts_u64(&mut v);
        let mut v: Vec<u64> = (0..50_000).rev().collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn sorts_with_few_distinct_leading_bytes() {
        // All values share the top 5 bytes, exercising the trivial-level skip.
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u64> = (0..30_000).map(|_| rng.gen::<u64>() & 0xFF_FFFF).collect();
        check_sorts_u64(&mut v);
    }

    #[test]
    fn keyed_kernel_matches_closure_path() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in [0usize, 1, 100, 5_000, 150_000] {
            let original: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            let mut a = original.clone();
            let mut b = original;
            paradis_sort(&mut a);
            paradis_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn keyed_kernel_survives_cycle_adversaries() {
        // Inputs engineered to stress the cycle chase: every element's destination
        // bucket is a fixed rotation of the bucket it starts in (one giant cycle per
        // residue class), reversed buckets (all 2-cycles), and a skewed distribution
        // where one bucket swallows 90 % of the input.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000usize;
        let rotated: Vec<u64> = (0..n)
            .map(|i| {
                let bucket = ((i % 256) as u64 + 17) % 256;
                (bucket << 56) | (rng.gen::<u64>() >> 8)
            })
            .collect();
        let reversed: Vec<u64> = (0..n)
            .map(|i| {
                let bucket = 255 - (i % 256) as u64;
                (bucket << 56) | (rng.gen::<u64>() >> 8)
            })
            .collect();
        let skewed: Vec<u64> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    0xAB00_0000_0000_0000 | (rng.gen::<u64>() >> 8)
                } else {
                    rng.gen()
                }
            })
            .collect();
        for (name, input) in [
            ("rotated", rotated),
            ("reversed", reversed),
            ("skewed", skewed),
        ] {
            let mut v = input;
            let mut expected = v.clone();
            expected.sort_unstable();
            paradis_sort(&mut v);
            assert_eq!(v, expected, "{name}");
        }
    }

    #[test]
    fn keyed_kernel_sorts_u128_and_honours_skip_hint() {
        let mut rng = StdRng::seed_from_u64(7);
        // Keys confined to the low 6 bytes: first 10 of 16 levels are constant zero.
        let mut v: Vec<u128> = (0..80_000)
            .map(|_| rng.gen::<u128>() & 0xFFFF_FFFF_FFFF)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut with_hint = v.clone();
        paradis_sort_from(&mut with_hint, 10);
        paradis_sort(&mut v);
        assert_eq!(v, expected);
        assert_eq!(with_hint, expected);
    }

    #[test]
    fn keyed_kernel_groups_tagged_records_by_key() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<(u32, u32)> = (0..50_000).map(|i| (rng.gen::<u32>() % 1000, i)).collect();
        paradis_sort(&mut v);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let mut payloads: Vec<u32> = v.iter().map(|x| x.1).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..50_000).collect::<Vec<u32>>());
    }

    #[test]
    fn sorts_pairs_by_key_only() {
        // Items carry a payload; sorting must group by key while ignoring the payload.
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<(u32, u32)> = (0..50_000).map(|i| (rng.gen::<u32>() % 1000, i)).collect();
        paradis_sort_by(&mut v, 4, |x, l| (x.0 >> (8 * (3 - l))) as u8);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // All payloads must survive (it is a permutation).
        let mut payloads: Vec<u32> = v.iter().map(|x| x.1).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..50_000).collect::<Vec<u32>>());
    }
}
