//! Quick microbenchmark: closure-based raduls vs monomorphized kernel on 1M u64 keys.
use hysortk_sort::{raduls_sort, raduls_sort_by};
use std::time::Instant;

fn main() {
    let mut x = 0x243F6A8885A308D3u64;
    let keys: Vec<u64> = (0..1_000_000)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect();
    let time = |f: &dyn Fn(&mut Vec<u64>)| {
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let mut v = keys.clone();
            let t = Instant::now();
            f(&mut v);
            best = best.min(t.elapsed().as_secs_f64());
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
        best
    };
    let closure = time(&|v| raduls_sort_by(v, 8, |x, l| (x >> (8 * (7 - l))) as u8));
    let kernel = time(&|v| raduls_sort(v));
    println!(
        "closure: {:.3} ms  kernel: {:.3} ms  speedup: {:.2}x",
        closure * 1e3,
        kernel * 1e3,
        closure / kernel
    );
}
