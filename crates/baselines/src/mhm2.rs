//! MetaHipMer2-style GPU supermer counter (paper §4.4, Figure 9).
//!
//! MHM2's k-mer analysis module builds supermers on the CPU, exchanges them across
//! ranks, and counts them in GPU hash tables. The counting itself is exact (we perform
//! it on the CPU here — the arithmetic is identical), but the *cost* of the GPU path is
//! taken from the GPU cost model: host→device transfers over PCIe, kernel throughput,
//! and per-round launch overheads, plus the CPU-side exchange. The paper's hypothesis —
//! that CPU↔GPU and inter-CPU communication dominate and that the gap narrows as nodes
//! and k grow — falls out of exactly these terms.

use std::collections::BTreeMap;

use hysortk_core::result::KmerHistogram;
use hysortk_core::{HySortKConfig, RunReport};
use hysortk_dmem::{Cluster, CommStats};
use hysortk_dna::kmer::KmerCode;
use hysortk_dna::readset::ReadSet;
use hysortk_perfmodel::network::ExchangeProfile;
use hysortk_perfmodel::{ExecutionConfig, MachineConfig, PerfModel, SortAlgorithm, StageTimes};
use hysortk_supermer::mmer::{MmerScorer, ScoreFunction};
use hysortk_supermer::supermer::build_supermers;

use crate::BaselineResult;

/// Count canonical k-mers with the MHM2-like GPU strategy.
///
/// `cfg.nodes` selects the number of GPU nodes; each node runs one rank per GPU (4 on
/// the Perlmutter GPU partition). The machine model is forced to the GPU preset.
pub fn mhm2_count<K: KmerCode>(reads: &ReadSet, cfg: &HySortKConfig) -> BaselineResult<K> {
    cfg.validate().expect("invalid configuration");
    let machine = MachineConfig::perlmutter_gpu();
    let gpus = machine.gpu.as_ref().expect("gpu preset").gpus_per_node;
    let p = (cfg.nodes * gpus).max(1);
    let k = cfg.k;
    let ranges = reads.partition_by_bases(p);
    let scorer = MmerScorer::new(cfg.m, ScoreFunction::Hash { seed: cfg.seed });

    struct RankOut<K: KmerCode> {
        counts: Vec<(K, u64)>,
        histogram: KmerHistogram,
        bases: u64,
        received_kmers: u64,
    }

    let run = Cluster::new(p).run(|ctx| {
        let rank = ctx.rank();
        let my_reads = &reads.reads()[ranges[rank].clone()];

        // Supermer construction (CPU side), one target per rank (MHM2 has no task layer).
        let mut send: Vec<Vec<u8>> = vec![Vec::new(); ctx.size()];
        let mut bases = 0u64;
        for read in my_reads {
            bases += read.len() as u64;
            for sm in build_supermers(read, k, &scorer, ctx.size() as u32) {
                let dest = sm.target as usize;
                hysortk_core::wire::write_block::<K>(
                    &mut send[dest],
                    sm.target,
                    &hysortk_core::wire::TaskPayload::Supermers(vec![sm]),
                );
            }
        }
        let exchange = ctx
            .alltoall_rounds(send, cfg.batch_size * K::num_bytes(k), "exchange")
            .expect("baseline cluster runs without fault injection");

        // "GPU" counting: exact counting of the received supermers' k-mers.
        let mut table: BTreeMap<K, u64> = BTreeMap::new();
        let mut received_kmers = 0u64;
        for bytes in &exchange.received {
            let blocks = hysortk_core::wire::read_blocks::<K>(bytes).expect("well-formed stream");
            for block in blocks {
                if let hysortk_core::wire::PayloadView::Supermers(view) = block.payload {
                    for sm in view.iter() {
                        sm.for_each_canonical_kmer::<K>(k, |km, _| {
                            received_kmers += 1;
                            *table.entry(km).or_insert(0) += 1;
                        });
                    }
                }
            }
        }

        let mut histogram = KmerHistogram::new(cfg.max_count as usize + 2);
        let mut counts = Vec::new();
        for (km, c) in table {
            histogram.record(c);
            if c >= cfg.min_count && c <= cfg.max_count {
                counts.push((km, c));
            }
        }
        RankOut {
            counts,
            histogram,
            bases,
            received_kmers,
        }
    });

    // ---- merge and model -----------------------------------------------------------------
    let mut counts: Vec<(K, u64)> = Vec::new();
    let mut histogram = KmerHistogram::new(cfg.max_count as usize + 2);
    for out in &run.results {
        counts.extend(out.counts.iter().cloned());
        histogram.merge(&out.histogram);
    }
    counts.sort_by_key(|a| a.0);

    let scale = 1.0 / cfg.data_scale;
    let exec = ExecutionConfig::new(cfg.nodes, gpus, machine.cores_per_node / gpus, 4);
    let model = PerfModel::new(machine, exec);
    let compute = model.compute();
    let network = model.network();

    let max_bases = run.results.iter().map(|o| o.bases).max().unwrap_or(0) as f64 * scale;
    let max_received = run
        .results
        .iter()
        .map(|o| o.received_kmers)
        .max()
        .unwrap_or(0) as f64
        * scale;
    let total_kmers = (reads.total_kmers(k) as f64 * scale) as u64;

    let payload = |s: &CommStats| s.stage("exchange").map(|st| st.payload_bytes).unwrap_or(0);
    let max_rank_payload = (run.comm.iter().map(&payload).max().unwrap_or(0) as f64 * scale) as u64;
    let total_payload = (run.comm.iter().map(payload).sum::<u64>() as f64 * scale) as u64;
    let max_pair_payload = run
        .comm
        .iter()
        .enumerate()
        .map(|(r, s)| {
            s.sent_to
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != r)
                .map(|(_, &b)| b)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0) as f64
        * scale;
    let batch_bytes = (cfg.batch_size * K::num_bytes(k)) as u64;
    let (max_rank_wire, rounds_projected) = hysortk_perfmodel::project_padded_exchange(
        max_rank_payload,
        max_pair_payload as u64,
        batch_bytes,
        p.saturating_sub(1).max(1),
    );
    let max_rank_wire = max_rank_wire as f64;
    let total_wire = (total_payload + (max_rank_wire as u64 - max_rank_payload) * p as u64) as f64;
    let off_node = run
        .comm
        .iter()
        .enumerate()
        .map(|(r, s)| s.off_node_fraction(r, gpus))
        .fold(0.0f64, f64::max);

    let mut stages = StageTimes::new();
    stages.add("parse", compute.parse_time(max_bases as u64));
    let profile = ExchangeProfile {
        max_rank_wire_bytes: max_rank_wire as u64,
        off_node_fraction: off_node,
        rounds: rounds_projected,
        overlappable_compute: 0.0,
        overlap_fraction: 0.0,
    };
    stages.add("exchange", network.exchange_time(&profile));
    // GPU processing: PCIe transfer of the receive buffer plus kernel time, per node.
    let elements_per_node = (max_received as u64) * gpus as u64;
    stages.add(
        "gpu-count",
        compute.gpu_process_time(elements_per_node, K::WORDS * 8, rounds_projected),
    );

    let peak = model.memory().hash_counter_peak(
        (histogram.distinct() as f64 * scale) as u64 / cfg.nodes.max(1) as u64,
        elements_per_node,
        K::WORDS * 8,
        0.7,
        None,
    );

    let report = RunReport {
        stage_times: stages,
        // Modeled baseline: nothing is measured per rank, so no wall attribution.
        stage_wall: Default::default(),
        comm: CommStats::aggregate(&run.comm),
        peak_memory_per_node: peak,
        sorter: SortAlgorithm::HashTable,
        total_kmers,
        distinct_kmers: histogram.distinct(),
        retained_kmers: counts.len() as u64,
        heavy_tasks: 0,
        max_rank_wire_bytes: max_rank_wire as u64,
        total_wire_bytes: total_wire as u64,
        exchange_rounds: rounds_projected,
        assignment_imbalance: 1.0,
        overlap_fraction: 0.0,
        io_retries: 0,
        recoveries: 0,
        epochs_committed: 0,
        simd: hysortk_dna::simd::path_name(),
    };

    BaselineResult {
        counts,
        histogram,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hysortk_core::reference::reference_counts_bounded;
    use hysortk_datasets::DatasetPreset;
    use hysortk_dna::Kmer1;

    #[test]
    fn matches_reference_counts() {
        let data = DatasetPreset::ABaumannii.generate(1e-4, 41);
        let mut cfg = HySortKConfig::small(21, 9, 2);
        cfg.nodes = 1;
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        cfg.data_scale = data.data_scale;
        let result = mhm2_count::<Kmer1>(&data.reads, &cfg);
        let expected = reference_counts_bounded::<Kmer1>(&data.reads, 21, 1, 1_000_000);
        assert_eq!(result.counts, expected);
    }

    #[test]
    fn hysortk_beats_the_gpu_baseline_and_the_gap_narrows_with_k() {
        // Figure 9: HySortK is several times faster; larger k (longer supermers, less
        // traffic) narrows the gap.
        let data = DatasetPreset::CElegans.generate(5e-5, 42);
        let speedup_at = |k: usize, m: usize| {
            let mut cfg = HySortKConfig::default();
            cfg.k = k;
            cfg.m = m;
            cfg.nodes = 2;
            cfg.min_count = 2;
            cfg.max_count = 50;
            cfg.data_scale = data.data_scale;
            let gpu = mhm2_count::<Kmer1>(&data.reads, &cfg);
            let cpu = hysortk_core::count_kmers::<Kmer1>(&data.reads, &cfg);
            assert_eq!(gpu.counts, cpu.counts, "k={k}");
            gpu.report.total_time() / cpu.report.total_time()
        };
        let s17 = speedup_at(17, 8);
        let s31 = speedup_at(31, 15);
        assert!(s17 > 1.0, "HySortK should be faster at k=17 (ratio {s17})");
        assert!(s31 > 1.0, "HySortK should be faster at k=31 (ratio {s31})");
    }
}
