//! Two-pass distributed hash-table counter (Georganas et al., paper §2.2).
//!
//! The classic pipeline HipMer, ELBA and DEDUKT follow:
//!
//! 1. build HyperLogLog sketches locally and all-reduce them to estimate the number of
//!    distinct k-mers, then size a Bloom filter accordingly;
//! 2. **pass 1** — exchange bare k-mers and insert them into the destination's Bloom
//!    filter, remembering which k-mers were seen at least twice;
//! 3. **pass 2** — exchange the k-mers again (with extension information if requested)
//!    and insert only the ones that passed the filter into a hash table that accumulates
//!    the counts.
//!
//! Relative to HySortK this costs a second full exchange, Bloom-filter memory, and
//! random-access hash insertions — exactly the overheads §3.1 and §3.3 describe.

use std::collections::BTreeMap;

use hysortk_core::result::KmerHistogram;
use hysortk_core::{HySortKConfig, RunReport};
use hysortk_dmem::{Cluster, CommStats, Wire};
use hysortk_dna::kmer::KmerCode;
use hysortk_dna::readset::ReadSet;
use hysortk_hash::{hash_kmer, BloomFilter, HyperLogLog};
use hysortk_perfmodel::network::ExchangeProfile;
use hysortk_perfmodel::{PerfModel, SortAlgorithm, StageTimes};

use crate::BaselineResult;

/// Newtype giving [`HyperLogLog`] a wire codec (the sketch lives in the hash
/// crate, the codec trait in dmem — neither is ours to implement on the other).
#[derive(Clone)]
struct WireHll(HyperLogLog);

impl Wire for WireHll {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.precision().encode(out);
        out.extend_from_slice(self.0.registers());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let precision = u8::decode(input)?;
        let len = 1usize.checked_shl(u32::from(precision))?;
        if input.len() < len {
            return None;
        }
        let registers = input[..len].to_vec();
        *input = &input[len..];
        HyperLogLog::from_parts(precision, registers).map(WireHll)
    }
}

/// Count canonical k-mers with the two-pass hash-table pipeline.
///
/// Uses `cfg` for k, the cluster layout, the count band and the machine model; the
/// supermer/task-layer/heavy-hitter options are ignored (this baseline has none of them).
/// Note that the two-pass design inherently drops singletons, so `cfg.min_count` must be
/// at least 2 for the output to be meaningful; lower values are clamped to 2.
pub fn two_pass_hash_count<K: KmerCode>(reads: &ReadSet, cfg: &HySortKConfig) -> BaselineResult<K> {
    cfg.validate().expect("invalid configuration");
    let p = cfg.total_ranks();
    let k = cfg.k;
    let min_count = cfg.min_count.max(2);
    let max_count = cfg.max_count;
    let ranges = reads.partition_by_bases(p);

    struct RankOut<K: KmerCode> {
        counts: Vec<(K, u64)>,
        histogram: KmerHistogram,
        bases: u64,
        kmers_sent: u64,
        received: u64,
        bloom_bytes: u64,
        table_distinct: u64,
    }

    let run = Cluster::new(p).run(|ctx| {
        let rank = ctx.rank();
        let my_reads = &reads.reads()[ranges[rank].clone()];

        // ---- HyperLogLog estimate (the "pass 0" whose traffic is k-independent) ------
        let mut hll = HyperLogLog::new(12);
        let mut bases = 0u64;
        for read in my_reads {
            bases += read.len() as u64;
            for km in read.seq.canonical_kmers::<K>(k) {
                hll.insert_hash(hash_kmer(&km, 0x5eed));
            }
        }
        let merged = ctx
            .allreduce(WireHll(hll), "hll-merge", |mut a, b| {
                a.0.merge(&b.0);
                a
            })
            .expect("baseline cluster runs without fault injection")
            .0;
        let estimated_distinct = merged.estimate().max(64.0) as usize;
        let per_rank_estimate = estimated_distinct / ctx.size() + 1;

        // ---- pass 1: exchange bare k-mers, populate Bloom filters --------------------
        let mut send: Vec<Vec<u64>> = vec![Vec::new(); ctx.size()];
        let mut kmers_sent = 0u64;
        for read in my_reads {
            for km in read.seq.canonical_kmers::<K>(k) {
                let dest = (hash_kmer(&km, cfg.seed) % ctx.size() as u64) as usize;
                kmers_sent += 1;
                // Ship the packed words (1 or 2 u64 per k-mer).
                for &w in km.word_slice() {
                    send[dest].push(w);
                }
            }
        }
        let pass1 = ctx
            .alltoall_rounds(send.clone(), cfg.batch_size * K::WORDS, "pass1")
            .expect("baseline cluster runs without fault injection");

        let mut bloom = BloomFilter::with_rate(per_rank_estimate.max(1024), 0.01);
        let mut seen_twice: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
        for row in &pass1.received {
            for chunk in row.chunks_exact(K::WORDS) {
                if bloom.insert(bytemuck_words(chunk)) {
                    seen_twice.insert(chunk.to_vec());
                }
            }
        }

        // ---- pass 2: exchange again, count in the hash table -------------------------
        let pass2 = ctx
            .alltoall_rounds(send, cfg.batch_size * K::WORDS, "pass2")
            .expect("baseline cluster runs without fault injection");
        let mut table: BTreeMap<Vec<u64>, u64> = BTreeMap::new();
        let mut received = 0u64;
        for row in &pass2.received {
            for chunk in row.chunks_exact(K::WORDS) {
                received += 1;
                if seen_twice.contains(chunk) {
                    *table.entry(chunk.to_vec()).or_insert(0) += 1;
                }
            }
        }

        let mut histogram = KmerHistogram::new(max_count as usize + 2);
        // Singletons were filtered by the Bloom filter; record what the table holds.
        let mut counts: Vec<(K, u64)> = Vec::new();
        for (words, count) in &table {
            histogram.record(*count);
            if *count >= min_count && *count <= max_count {
                counts.push((kmer_from_word_vec::<K>(words), *count));
            }
        }
        counts.sort_by_key(|a| a.0);

        RankOut {
            counts,
            histogram,
            bases,
            kmers_sent,
            received,
            bloom_bytes: bloom.memory_bytes() as u64,
            table_distinct: table.len() as u64,
        }
    });

    // ---- merge and build the report -----------------------------------------------------
    let scale = 1.0 / cfg.data_scale;
    let model = PerfModel::new(cfg.machine.clone(), cfg.execution());
    let compute = model.compute();
    let network = model.network();

    let mut counts: Vec<(K, u64)> = Vec::new();
    let mut histogram = KmerHistogram::new(max_count as usize + 2);
    for out in &run.results {
        counts.extend(out.counts.iter().cloned());
        histogram.merge(&out.histogram);
    }
    counts.sort_by_key(|a| a.0);

    let max_bases = run.results.iter().map(|o| o.bases).max().unwrap_or(0) as f64 * scale;
    let max_received = run.results.iter().map(|o| o.received).max().unwrap_or(0) as f64 * scale;
    let total_kmers: u64 =
        (run.results.iter().map(|o| o.kmers_sent).sum::<u64>() as f64 * scale) as u64;
    let max_distinct = run
        .results
        .iter()
        .map(|o| o.table_distinct)
        .max()
        .unwrap_or(0) as f64
        * scale;
    let bloom_bytes = run.results.iter().map(|o| o.bloom_bytes).max().unwrap_or(0) as f64 * scale;

    // Project payloads to full scale, then recompute rounds/padding (see the same logic
    // in the HySortK pipeline): both passes move the same k-mer payload.
    let payload =
        |s: &CommStats, label: &str| s.stage(label).map(|st| st.payload_bytes).unwrap_or(0);
    let per_pass_payload_max = run
        .comm
        .iter()
        .map(|s| payload(s, "pass1"))
        .max()
        .unwrap_or(0) as f64
        * scale;
    let per_pass_pair_max = run
        .comm
        .iter()
        .enumerate()
        .map(|(r, s)| {
            s.sent_to
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != r)
                .map(|(_, &b)| b / 2)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0) as f64
        * scale;
    let batch_bytes = (cfg.batch_size * K::WORDS * 8) as u64;
    let (per_pass_wire, per_pass_rounds) = hysortk_perfmodel::project_padded_exchange(
        per_pass_payload_max as u64,
        per_pass_pair_max as u64,
        batch_bytes,
        p.saturating_sub(1).max(1),
    );
    let max_rank_wire = (per_pass_wire * 2) as f64;
    let total_wire = run
        .comm
        .iter()
        .map(|s| payload(s, "pass1") + payload(s, "pass2"))
        .sum::<u64>() as f64
        * scale
        + ((per_pass_wire * 2).saturating_sub((per_pass_payload_max * 2.0) as u64) * p as u64)
            as f64;
    let off_node = run
        .comm
        .iter()
        .enumerate()
        .map(|(r, s)| s.off_node_fraction(r, cfg.processes_per_node))
        .fold(0.0f64, f64::max);
    let rounds_projected = per_pass_rounds * 2;

    let mut stages = StageTimes::new();
    stages.add("parse", compute.parse_time(max_bases as u64));
    let profile = ExchangeProfile {
        max_rank_wire_bytes: max_rank_wire as u64,
        off_node_fraction: off_node,
        rounds: rounds_projected,
        overlappable_compute: 0.0,
        overlap_fraction: 0.0,
    };
    stages.add("exchange", network.exchange_time(&profile));
    // Bloom insertions (pass 1) + hash-table insertions (pass 2): random-access bound.
    stages.add("bloom", compute.hash_insert_time(max_received as u64));
    stages.add("hash-count", compute.hash_insert_time(max_received as u64));

    let elements_per_node = (max_received as u64) * cfg.processes_per_node as u64;
    let distinct_per_node = (max_distinct as u64) * cfg.processes_per_node as u64;
    let peak = model.memory().hash_counter_peak(
        distinct_per_node,
        elements_per_node,
        K::WORDS * 8,
        0.7,
        Some(10.0),
    ) + (bloom_bytes as u64) * cfg.processes_per_node as u64;

    let report = RunReport {
        stage_times: stages,
        // Modeled baseline: nothing is measured per rank, so no wall attribution.
        stage_wall: Default::default(),
        comm: CommStats::aggregate(&run.comm),
        peak_memory_per_node: peak,
        sorter: SortAlgorithm::HashTable,
        total_kmers,
        distinct_kmers: histogram.distinct(),
        retained_kmers: counts.len() as u64,
        heavy_tasks: 0,
        max_rank_wire_bytes: max_rank_wire as u64,
        total_wire_bytes: total_wire as u64,
        exchange_rounds: rounds_projected,
        assignment_imbalance: 1.0,
        overlap_fraction: 0.0,
        io_retries: 0,
        recoveries: 0,
        epochs_committed: 0,
        simd: hysortk_dna::simd::path_name(),
    };

    BaselineResult {
        counts,
        histogram,
        report,
    }
}

fn bytemuck_words(words: &[u64]) -> &[u8] {
    // Safe reinterpretation of &[u64] as &[u8] for hashing into the Bloom filter.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

/// Rebuild a packed k-mer from its wire words (shared with the kmerind baseline).
pub(crate) fn kmer_from_word_vec<K: KmerCode>(words: &[u64]) -> K {
    let capacity = K::max_k();
    let mut km = K::zero();
    for i in 0..capacity {
        let bit = 2 * (capacity - 1 - i);
        let word_idx = words.len() - 1 - bit / 64;
        let shift = bit % 64;
        let code = ((words[word_idx] >> shift) & 0b11) as u8;
        km = km.push_base(capacity, code);
    }
    km
}

#[cfg(test)]
mod tests {
    use super::*;
    use hysortk_core::reference::reference_counts_bounded;
    use hysortk_datasets::DatasetPreset;
    use hysortk_dna::Kmer1;

    #[test]
    fn matches_reference_above_the_singleton_threshold() {
        let data = DatasetPreset::ABaumannii.generate(2e-4, 11);
        let mut cfg = HySortKConfig::small(21, 9, 4);
        cfg.min_count = 2;
        cfg.max_count = 10_000;
        cfg.data_scale = data.data_scale;
        let result = two_pass_hash_count::<Kmer1>(&data.reads, &cfg);
        let expected = reference_counts_bounded::<Kmer1>(&data.reads, 21, 2, 10_000);
        assert_eq!(result.counts, expected);
        assert!(result.report.total_time() > 0.0);
    }

    #[test]
    fn uses_two_exchange_passes_and_more_wire_bytes_than_hysortk() {
        let data = DatasetPreset::CElegans.generate(5e-5, 12);
        let mut cfg = HySortKConfig::small(21, 9, 4);
        cfg.min_count = 2;
        cfg.max_count = 10_000;
        cfg.data_scale = data.data_scale;
        let hash = two_pass_hash_count::<Kmer1>(&data.reads, &cfg);
        let sort = hysortk_core::count_kmers::<Kmer1>(&data.reads, &cfg);
        assert_eq!(hash.counts, sort.counts);
        // §3.2/§3.3: supermers + one-pass exchange move far fewer bytes.
        assert!(
            hash.report.total_wire_bytes > 2 * sort.report.total_wire_bytes,
            "hash {} vs sort {}",
            hash.report.total_wire_bytes,
            sort.report.total_wire_bytes
        );
        // And the hash-table pipeline needs more memory.
        assert!(hash.report.peak_memory_per_node > sort.report.peak_memory_per_node);
    }
}
