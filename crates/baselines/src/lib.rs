//! Baseline k-mer counters the paper compares HySortK against.
//!
//! Each baseline re-implements the *strategy* of the corresponding tool on the same
//! substrates (simulated cluster, performance model, synthetic datasets), so the
//! comparisons isolate the algorithmic differences the paper discusses:
//!
//! * [`hashtable`] — the classic two-pass distributed hash-table pipeline of Georganas
//!   et al. (HipMer / ELBA's original counter): HyperLogLog cardinality estimate, Bloom
//!   filter first pass, hash-table second pass (§2.2).
//! * [`kmerind`] — a one-pass distributed counter with a Robin-Hood open-addressing
//!   table and communication/computation overlap, modelling the improved kmerind of Pan
//!   et al. (§4.4, Figures 7–8), including its out-of-memory behaviour at low node
//!   counts.
//! * [`kmc3`] — a shared-memory sorting-based counter in the spirit of KMC3 (§4.3,
//!   Figure 6): one process, bins by minimizer, per-bin radix sort, no task layer.
//! * [`mhm2`] — the GPU supermer counter of MetaHipMer2 (§4.4, Figure 9), whose GPU
//!   kernels and PCIe transfers are represented by the GPU cost model.
//! * [`robinhood`] — the Robin-Hood hash table used by the kmerind baseline (also a
//!   reusable component in its own right).
//!
//! All baselines produce exact counts (verified against the reference counter); what
//! differs is the measured traffic and the modeled time/memory in their reports.

pub mod hashtable;
pub mod kmc3;
pub mod kmerind;
pub mod mhm2;
pub mod robinhood;

pub use hashtable::two_pass_hash_count;
pub use kmc3::kmc3_count;
pub use kmerind::{kmerind_count, KmerindOutcome};
pub use mhm2::mhm2_count;
pub use robinhood::RobinHoodTable;

use hysortk_core::result::KmerHistogram;
use hysortk_core::RunReport;
use hysortk_dna::kmer::KmerCode;

/// Result of a baseline counting run: exact counts plus the modeled report.
#[derive(Debug, Clone)]
pub struct BaselineResult<K: KmerCode> {
    /// `(canonical k-mer, count)` pairs within the configured band, sorted by k-mer.
    pub counts: Vec<(K, u64)>,
    /// Histogram over all distinct k-mers.
    pub histogram: KmerHistogram,
    /// Measured traffic and modeled time/memory.
    pub report: RunReport,
}
