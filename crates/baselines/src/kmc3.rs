//! KMC3-style shared-memory sorting counter (paper §4.3, Figure 6).
//!
//! KMC3 also counts by sorting, but it is a single-process shared-memory tool: reads are
//! cut into super-k-mers, distributed into bins by minimizer, and each bin is sorted and
//! scanned. Run in RAM-only mode (the `-r` flag of the comparison), its algorithmic
//! structure matches HySortK's third stage minus the task abstraction layer: one big
//! thread pool works through the bins, and the whole machine is treated as a flat SMP —
//! which is exactly the NUMA/CCX behaviour the paper credits for HySortK's edge.

use hysortk_core::result::KmerHistogram;
use hysortk_core::{HySortKConfig, RunReport};
use hysortk_dmem::CommStats;
use hysortk_dna::kmer::KmerCode;
use hysortk_dna::readset::ReadSet;
use hysortk_perfmodel::{ExecutionConfig, PerfModel, SortAlgorithm, StageTimes};
use hysortk_sort::{count_sorted_runs, raduls_sort_by};
use hysortk_supermer::mmer::{MmerScorer, ScoreFunction};
use hysortk_supermer::supermer::build_supermers;
use rayon::prelude::*;

use crate::BaselineResult;

/// Number of bins KMC3-style binning uses (the real tool defaults to 512).
const BINS: usize = 512;

/// Count canonical k-mers with the KMC3-like shared-memory strategy. The cluster layout
/// in `cfg` is ignored (KMC3 is single-node, single-process); the machine model and the
/// thread count of one node are used for the time projection.
pub fn kmc3_count<K: KmerCode>(reads: &ReadSet, cfg: &HySortKConfig) -> BaselineResult<K> {
    cfg.validate().expect("invalid configuration");
    let k = cfg.k;
    let scorer = MmerScorer::new(cfg.m, ScoreFunction::Hash { seed: cfg.seed });

    // ---- bin super-k-mers by minimizer ------------------------------------------------
    let mut bins: Vec<Vec<K>> = (0..BINS).map(|_| Vec::new()).collect();
    let mut bases = 0u64;
    for read in reads.iter() {
        bases += read.len() as u64;
        for sm in build_supermers(read, k, &scorer, BINS as u32) {
            let bin = &mut bins[sm.target as usize];
            for (km, _) in sm.canonical_kmers_with_pos::<K>(k) {
                bin.push(km);
            }
        }
    }

    // ---- sort and scan every bin with one flat thread pool -----------------------------
    let levels = K::num_bytes(k);
    let bin_outputs: Vec<(Vec<(K, u64)>, KmerHistogram)> = bins
        .into_par_iter()
        .map(|mut bin| {
            raduls_sort_by(&mut bin, levels, |km, l| km.byte_msb(k, l));
            let runs = count_sorted_runs(&bin, |km| *km);
            let mut histogram = KmerHistogram::new(cfg.max_count as usize + 2);
            let mut counts = Vec::new();
            for (km, c) in runs {
                histogram.record(c);
                if c >= cfg.min_count && c <= cfg.max_count {
                    counts.push((km, c));
                }
            }
            (counts, histogram)
        })
        .collect();

    let mut counts: Vec<(K, u64)> = Vec::new();
    let mut histogram = KmerHistogram::new(cfg.max_count as usize + 2);
    let mut total_instances = 0u64;
    for (c, h) in &bin_outputs {
        counts.extend(c.iter().cloned());
        histogram.merge(h);
        total_instances += c.iter().map(|(_, n)| *n).sum::<u64>();
    }
    counts.sort_by_key(|a| a.0);

    // ---- model: one process spanning the whole node ------------------------------------
    let scale = 1.0 / cfg.data_scale;
    let machine = cfg.machine.clone();
    let exec = ExecutionConfig::new(1, 1, machine.cores_per_node, machine.cores_per_node);
    let model = PerfModel::new(machine, exec);
    let compute = model.compute();

    let total_kmers = (reads.total_kmers(k) as f64 * scale) as u64;
    let mut stages = StageTimes::new();
    stages.add("parse", compute.parse_time((bases as f64 * scale) as u64));
    // All threads sort the bin queue as one flat pool: monolithic thread scaling, which
    // is where the >16-thread efficiency loss and the cross-CCX penalty bite.
    stages.add(
        "sort",
        compute.sort_time_monolithic(
            (total_instances as f64 * scale) as u64,
            K::WORDS * 8,
            SortAlgorithm::Raduls,
        ),
    );
    stages.add(
        "scan",
        compute.scan_time((total_instances as f64 * scale) as u64),
    );

    let peak = model.memory().sort_counter_peak(
        (total_instances as f64 * scale) as u64,
        K::WORDS * 8,
        true,
        1.0, // no task layer: the whole payload may need its auxiliary copy
    );

    let report = RunReport {
        stage_times: stages,
        // Modeled baseline: nothing is measured per rank, so no wall attribution.
        stage_wall: Default::default(),
        comm: CommStats::default(),
        peak_memory_per_node: peak,
        sorter: SortAlgorithm::Raduls,
        total_kmers,
        distinct_kmers: histogram.distinct(),
        retained_kmers: counts.len() as u64,
        heavy_tasks: 0,
        max_rank_wire_bytes: 0,
        total_wire_bytes: 0,
        exchange_rounds: 0,
        assignment_imbalance: 1.0,
        overlap_fraction: 0.0,
        io_retries: 0,
        recoveries: 0,
        epochs_committed: 0,
        simd: hysortk_dna::simd::path_name(),
    };

    BaselineResult {
        counts,
        histogram,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hysortk_core::reference::reference_counts_bounded;
    use hysortk_datasets::DatasetPreset;
    use hysortk_dna::Kmer1;

    #[test]
    fn matches_reference_counts() {
        let data = DatasetPreset::ABaumannii.generate(1e-4, 31);
        let mut cfg = HySortKConfig::small(17, 8, 1);
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        cfg.data_scale = data.data_scale;
        let result = kmc3_count::<Kmer1>(&data.reads, &cfg);
        let expected = reference_counts_bounded::<Kmer1>(&data.reads, 17, 1, 1_000_000);
        assert_eq!(result.counts, expected);
    }

    #[test]
    fn single_node_hysortk_is_competitive_or_faster() {
        // Figure 6: on one node HySortK matches or beats KMC3 thanks to the task layer.
        let data = DatasetPreset::CElegans.generate(5e-5, 32);
        let mut cfg = HySortKConfig::default();
        cfg.k = 31;
        cfg.m = 15;
        cfg.nodes = 1;
        cfg.data_scale = data.data_scale;
        cfg.min_count = 2;
        cfg.max_count = 50;
        let kmc = kmc3_count::<Kmer1>(&data.reads, &cfg);
        let hysortk = hysortk_core::count_kmers::<Kmer1>(&data.reads, &cfg);
        assert_eq!(kmc.counts, hysortk.counts);
        assert!(
            hysortk.report.total_time() <= kmc.report.total_time() * 1.1,
            "hysortk {} vs kmc3 {}",
            hysortk.report.total_time(),
            kmc.report.total_time()
        );
    }
}
