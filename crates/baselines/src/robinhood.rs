//! Robin-Hood open-addressing hash table keyed by packed k-mers.
//!
//! The improved kmerind of Pan et al. stores k-mers in cache-optimised Robin-Hood
//! tables (the paper runs its `ROBINHOOD, MURMUR64avx, CRC32C` variant, §4.4). This is a
//! straightforward Robin-Hood implementation: linear probing where an inserting entry
//! displaces any resident entry that is closer to its home slot ("rich"), keeping probe
//! distances short and predictable.

use hysortk_dna::kmer::KmerCode;
use hysortk_hash::hash_kmer;

#[derive(Debug, Clone, Copy)]
struct Slot<K> {
    key: K,
    value: u64,
    /// Probe distance from the home slot plus one; 0 marks an empty slot.
    dib: u32,
}

/// A Robin-Hood hash table mapping canonical k-mers to counts.
#[derive(Debug, Clone)]
pub struct RobinHoodTable<K: KmerCode> {
    slots: Vec<Slot<K>>,
    mask: usize,
    len: usize,
    max_load: f64,
    seed: u32,
}

impl<K: KmerCode> RobinHoodTable<K> {
    /// Create a table with capacity for roughly `expected` entries at the default load
    /// factor of 0.7 (the figure the paper quotes for hash-table memory overhead).
    pub fn with_expected(expected: usize) -> Self {
        let capacity = ((expected.max(8) as f64 / 0.7).ceil() as usize).next_power_of_two();
        RobinHoodTable {
            slots: vec![
                Slot {
                    key: K::zero(),
                    value: 0,
                    dib: 0
                };
                capacity
            ],
            mask: capacity - 1,
            len: 0,
            max_load: 0.7,
            seed: 0xC0FFEE,
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Resident memory of the table in bytes (slots only).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot<K>>()
    }

    #[inline]
    fn home(&self, key: &K) -> usize {
        (hash_kmer(key, self.seed) as usize) & self.mask
    }

    /// Add `delta` to the count of `key`, inserting it if absent.
    pub fn add(&mut self, key: K, delta: u64) {
        if (self.len + 1) as f64 > self.slots.len() as f64 * self.max_load {
            self.grow();
        }
        let mut pos = self.home(&key);
        let mut entry = Slot {
            key,
            value: delta,
            dib: 1,
        };
        loop {
            let slot = &mut self.slots[pos];
            if slot.dib == 0 {
                *slot = entry;
                self.len += 1;
                return;
            }
            if slot.key == entry.key && slot.dib > 0 && entry.dib <= slot.dib {
                // Same key can only be met on its own probe path; accumulate.
                slot.value += entry.value;
                return;
            }
            if slot.dib < entry.dib {
                std::mem::swap(slot, &mut entry);
            }
            pos = (pos + 1) & self.mask;
            entry.dib += 1;
        }
    }

    /// Look up the count of `key`.
    pub fn get(&self, key: &K) -> Option<u64> {
        let mut pos = self.home(key);
        let mut dib = 1u32;
        loop {
            let slot = &self.slots[pos];
            if slot.dib == 0 || slot.dib < dib {
                return None;
            }
            if slot.key == *key {
                return Some(slot.value);
            }
            pos = (pos + 1) & self.mask;
            dib += 1;
        }
    }

    fn grow(&mut self) {
        let new_capacity = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    key: K::zero(),
                    value: 0,
                    dib: 0
                };
                new_capacity
            ],
        );
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for slot in old {
            if slot.dib != 0 {
                self.add(slot.key, slot.value);
            }
        }
    }

    /// Drain the table into a sorted `(key, count)` vector.
    pub fn into_sorted_counts(self) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .slots
            .into_iter()
            .filter(|s| s.dib != 0)
            .map(|s| (s.key, s.value))
            .collect();
        out.sort_by_key(|a| a.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hysortk_dna::Kmer1;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn random_kmer(rng: &mut StdRng) -> Kmer1 {
        let s: Vec<u8> = (0..21).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
        Kmer1::from_ascii(&s)
    }

    #[test]
    fn add_and_get_match_a_reference_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys: Vec<Kmer1> = (0..500).map(|_| random_kmer(&mut rng)).collect();
        let mut table = RobinHoodTable::with_expected(64);
        let mut reference: HashMap<Kmer1, u64> = HashMap::new();
        for _ in 0..20_000 {
            let key = keys[rng.gen_range(0..keys.len())];
            let delta = rng.gen_range(1..4u64);
            table.add(key, delta);
            *reference.entry(key).or_insert(0) += delta;
        }
        assert_eq!(table.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(table.get(k), Some(*v));
        }
        assert_eq!(
            table
                .get(&Kmer1::from_ascii(b"AAAAAAAAAAAAAAAAAAAAA"))
                .is_some(),
            reference.contains_key(&Kmer1::from_ascii(b"AAAAAAAAAAAAAAAAAAAAA"))
        );
    }

    #[test]
    fn growth_preserves_contents() {
        let mut table = RobinHoodTable::with_expected(8);
        let mut rng = StdRng::seed_from_u64(2);
        let keys: Vec<Kmer1> = (0..5_000).map(|_| random_kmer(&mut rng)).collect();
        for k in &keys {
            table.add(*k, 1);
        }
        for k in &keys {
            assert!(table.get(k).is_some());
        }
        assert!(table.capacity() > 8);
    }

    #[test]
    fn into_sorted_counts_is_sorted_and_complete() {
        let mut table = RobinHoodTable::with_expected(16);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            table.add(random_kmer(&mut rng), 1);
        }
        let counts = table.clone().into_sorted_counts();
        assert_eq!(counts.len(), table.len());
        assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn missing_keys_return_none() {
        let table: RobinHoodTable<Kmer1> = RobinHoodTable::with_expected(8);
        assert!(table.is_empty());
        assert_eq!(
            table.get(&Kmer1::from_ascii(b"ACGTACGTACGTACGTACGTA")),
            None
        );
    }
}
