//! kmerind-style one-pass distributed Robin-Hood hash counter (paper §4.4).
//!
//! The improved kmerind of Pan et al. exchanges raw k-mers (no supermers) in a single
//! pass with communication/computation overlap and inserts them into cache-optimised
//! Robin-Hood hash tables. Its two weaknesses relative to HySortK, both visible in
//! Figures 7 and 8, are reproduced here: the memory footprint (staging buffer + table at
//! load factor 0.7, no singleton filtering), which makes it run out of memory on small
//! node counts, and the lack of a task layer, which makes it stop scaling at high node
//! counts (per-rank message counts explode while per-message sizes shrink).

use hysortk_core::result::KmerHistogram;
use hysortk_core::{HySortKConfig, RunReport};
use hysortk_dmem::{Cluster, CommStats};
use hysortk_dna::kmer::KmerCode;
use hysortk_dna::readset::ReadSet;
use hysortk_hash::hash_kmer;
use hysortk_perfmodel::network::ExchangeProfile;
use hysortk_perfmodel::{PerfModel, SortAlgorithm, StageTimes};

use crate::robinhood::RobinHoodTable;
use crate::BaselineResult;

/// Outcome of a kmerind run: either a result or an out-of-memory verdict (the missing
/// bar of Figure 7).
#[derive(Debug, Clone)]
pub enum KmerindOutcome<K: KmerCode> {
    /// The run fit in memory.
    Completed(Box<BaselineResult<K>>),
    /// The projected peak memory exceeded the node's DRAM; the run would have aborted.
    OutOfMemory {
        /// Projected peak bytes per node.
        projected_peak: u64,
        /// Available bytes per node.
        available: u64,
    },
}

impl<K: KmerCode> KmerindOutcome<K> {
    /// The result, if the run completed.
    pub fn result(&self) -> Option<&BaselineResult<K>> {
        match self {
            KmerindOutcome::Completed(r) => Some(r),
            KmerindOutcome::OutOfMemory { .. } => None,
        }
    }
}

/// Count canonical k-mers with the kmerind-style strategy.
pub fn kmerind_count<K: KmerCode>(reads: &ReadSet, cfg: &HySortKConfig) -> KmerindOutcome<K> {
    cfg.validate().expect("invalid configuration");
    let p = cfg.total_ranks();
    let k = cfg.k;
    let ranges = reads.partition_by_bases(p);
    let model = PerfModel::new(cfg.machine.clone(), cfg.execution());
    let scale = 1.0 / cfg.data_scale;

    // ---- memory feasibility check (before doing any work, as the real tool would) -----
    let projected_instances_per_node =
        (reads.total_kmers(k) as f64 * scale) as u64 / cfg.nodes.max(1) as u64;
    // Without counting we do not know the distinct fraction; kmerind sizes tables from
    // the instance stream, so assume a conservative 40 % distinct ratio.
    let projected_distinct_per_node = projected_instances_per_node * 2 / 5;
    let projected_peak = model.memory().hash_counter_peak(
        projected_distinct_per_node,
        projected_instances_per_node,
        K::WORDS * 8,
        0.7,
        None,
    );
    let available = cfg
        .machine
        .mem_per_node_bytes
        .saturating_sub(16 * (1 << 30));
    if projected_peak > available {
        return KmerindOutcome::OutOfMemory {
            projected_peak,
            available,
        };
    }

    struct RankOut<K: KmerCode> {
        counts: Vec<(K, u64)>,
        histogram: KmerHistogram,
        bases: u64,
        received: u64,
        table_bytes: u64,
        distinct: u64,
    }

    let run = Cluster::new(p).run(|ctx| {
        let rank = ctx.rank();
        let my_reads = &reads.reads()[ranges[rank].clone()];

        let mut send: Vec<Vec<u64>> = vec![Vec::new(); ctx.size()];
        let mut bases = 0u64;
        for read in my_reads {
            bases += read.len() as u64;
            for km in read.seq.canonical_kmers::<K>(k) {
                let dest = (hash_kmer(&km, cfg.seed) % ctx.size() as u64) as usize;
                for &w in km.word_slice() {
                    send[dest].push(w);
                }
            }
        }
        let exchange = ctx
            .alltoall_rounds(send, cfg.batch_size * K::WORDS, "exchange")
            .expect("baseline cluster runs without fault injection");

        let mut table: RobinHoodTable<K> = RobinHoodTable::with_expected(4096);
        let mut received = 0u64;
        for row in &exchange.received {
            for chunk in row.chunks_exact(K::WORDS) {
                received += 1;
                table.add(crate::hashtable::kmer_from_word_vec::<K>(chunk), 1);
            }
        }
        let table_bytes = table.memory_bytes() as u64;
        let distinct = table.len() as u64;

        let mut histogram = KmerHistogram::new(cfg.max_count as usize + 2);
        let mut counts = Vec::new();
        for (km, c) in table.into_sorted_counts() {
            histogram.record(c);
            if c >= cfg.min_count && c <= cfg.max_count {
                counts.push((km, c));
            }
        }
        RankOut {
            counts,
            histogram,
            bases,
            received,
            table_bytes,
            distinct,
        }
    });

    // ---- merge -------------------------------------------------------------------------
    let mut counts: Vec<(K, u64)> = Vec::new();
    let mut histogram = KmerHistogram::new(cfg.max_count as usize + 2);
    for out in &run.results {
        counts.extend(out.counts.iter().cloned());
        histogram.merge(&out.histogram);
    }
    counts.sort_by_key(|a| a.0);

    let compute = model.compute();
    let network = model.network();
    let max_bases = run.results.iter().map(|o| o.bases).max().unwrap_or(0) as f64 * scale;
    let max_received = run.results.iter().map(|o| o.received).max().unwrap_or(0) as f64 * scale;
    let max_distinct = run.results.iter().map(|o| o.distinct).max().unwrap_or(0) as f64 * scale;
    let total_kmers = (reads.total_kmers(k) as f64 * scale) as u64;

    let payload = |s: &CommStats| s.stage("exchange").map(|st| st.payload_bytes).unwrap_or(0);
    let max_rank_payload = (run.comm.iter().map(&payload).max().unwrap_or(0) as f64 * scale) as u64;
    let total_payload = (run.comm.iter().map(payload).sum::<u64>() as f64 * scale) as u64;
    let max_pair_payload = run
        .comm
        .iter()
        .enumerate()
        .map(|(r, s)| {
            s.sent_to
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != r)
                .map(|(_, &b)| b)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0) as f64
        * scale;
    let batch_bytes = (cfg.batch_size * K::WORDS * 8) as u64;
    let (max_rank_wire, rounds_projected) = hysortk_perfmodel::project_padded_exchange(
        max_rank_payload,
        max_pair_payload as u64,
        batch_bytes,
        p.saturating_sub(1).max(1),
    );
    let max_rank_wire = max_rank_wire as f64;
    let total_wire = (total_payload + (max_rank_wire as u64 - max_rank_payload) * p as u64) as f64;
    let off_node = run
        .comm
        .iter()
        .enumerate()
        .map(|(r, s)| s.off_node_fraction(r, cfg.processes_per_node))
        .fold(0.0f64, f64::max);

    // kmerind overlaps communication with hash insertion.
    let insert_time = compute.hash_insert_time(max_received as u64);
    let mut stages = StageTimes::new();
    stages.add("parse", compute.parse_time(max_bases as u64));
    let profile = ExchangeProfile {
        max_rank_wire_bytes: max_rank_wire as u64,
        off_node_fraction: off_node,
        rounds: rounds_projected,
        overlappable_compute: insert_time,
        overlap_fraction: 1.0,
    };
    stages.add("exchange+insert", network.exchange_time(&profile));
    // Lack of a task layer: the per-rank alltoall message count grows with the total
    // rank count, an overhead HySortK's task layer amortises. Model it as an extra
    // latency term per destination per round.
    let message_overhead = rounds_projected as f64
        * (p as f64)
        * cfg.machine.network_latency
        * (cfg.nodes as f64).log2().max(1.0);
    stages.add("message-overhead", message_overhead);

    let elements_per_node = (max_received as u64) * cfg.processes_per_node as u64;
    let distinct_per_node = (max_distinct as u64) * cfg.processes_per_node as u64;
    let table_measured: u64 = run.results.iter().map(|o| o.table_bytes).max().unwrap_or(0);
    let peak = model
        .memory()
        .hash_counter_peak(
            distinct_per_node,
            elements_per_node,
            K::WORDS * 8,
            0.7,
            None,
        )
        .max(table_measured * cfg.processes_per_node as u64);

    let report = RunReport {
        stage_times: stages,
        // Modeled baseline: nothing is measured per rank, so no wall attribution.
        stage_wall: Default::default(),
        comm: CommStats::aggregate(&run.comm),
        peak_memory_per_node: peak,
        sorter: SortAlgorithm::HashTable,
        total_kmers,
        distinct_kmers: histogram.distinct(),
        retained_kmers: counts.len() as u64,
        heavy_tasks: 0,
        max_rank_wire_bytes: max_rank_wire as u64,
        total_wire_bytes: total_wire as u64,
        exchange_rounds: rounds_projected,
        assignment_imbalance: 1.0,
        overlap_fraction: 1.0,
        io_retries: 0,
        recoveries: 0,
        epochs_committed: 0,
        simd: hysortk_dna::simd::path_name(),
    };

    KmerindOutcome::Completed(Box::new(BaselineResult {
        counts,
        histogram,
        report,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hysortk_core::reference::reference_counts_bounded;
    use hysortk_datasets::DatasetPreset;
    use hysortk_dna::Kmer1;

    #[test]
    fn matches_reference_counts() {
        let data = DatasetPreset::ABaumannii.generate(2e-4, 21);
        let mut cfg = HySortKConfig::small(21, 9, 4);
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        cfg.data_scale = data.data_scale;
        let outcome = kmerind_count::<Kmer1>(&data.reads, &cfg);
        let result = outcome.result().expect("should fit in memory");
        let expected = reference_counts_bounded::<Kmer1>(&data.reads, 21, 1, 1_000_000);
        assert_eq!(result.counts, expected);
    }

    #[test]
    fn runs_out_of_memory_on_one_node_with_a_big_dataset() {
        // Figure 7: kmerind cannot run H. sapiens 10x on a single 512 GB node.
        let data = DatasetPreset::HSapiens10x.generate(1e-6, 22);
        let mut cfg = HySortKConfig::default();
        cfg.nodes = 1;
        cfg.data_scale = data.data_scale;
        let outcome = kmerind_count::<Kmer1>(&data.reads, &cfg);
        assert!(
            outcome.result().is_none(),
            "expected an out-of-memory verdict"
        );
        // With 4 nodes it fits.
        cfg.nodes = 4;
        let outcome = kmerind_count::<Kmer1>(&data.reads, &cfg);
        assert!(outcome.result().is_some());
    }
}
