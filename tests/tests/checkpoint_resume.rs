//! Checkpoint → resume integration tests over the library API.
//!
//! These pin the durable half of the recovery story: a run that dies (recovery
//! disabled, so the typed abort surfaces) leaves round-granular epochs behind, and a
//! `resume` run replans deterministically, restores the newest globally-consistent
//! epoch, and finishes with counts byte-identical to a fault-free run. Torn `.tmp`
//! files are ignored, bit corruption falls back one epoch, and resuming against a
//! different configuration or changed inputs is a loud `Config` error — never a
//! silently different histogram.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hysortk_core::ingest::{count_kmers_from_files_faulted, count_kmers_from_files_with};
use hysortk_core::{CountResult, HySortKConfig, HysortkError};
use hysortk_dmem::{FaultKind, FaultPlan};
use hysortk_dna::io::IngestOptions;
use hysortk_dna::kmer::Kmer1;
use hysortk_dna::{fasta, ReadSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hysortk_resume_{}_{tag}", std::process::id()))
}

fn overlapping_reads(seed: u64) -> ReadSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let genome: Vec<u8> = (0..2_000).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let reads: Vec<Vec<u8>> = (0..60)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 220);
            genome[start..start + 220].to_vec()
        })
        .collect();
    ReadSet::from_ascii_reads(&reads)
}

fn resume_cfg(ranks: usize, overlap: bool) -> HySortKConfig {
    let mut cfg = HySortKConfig::small(21, 9, ranks);
    cfg.min_count = 1;
    cfg.max_count = 1_000_000;
    // Many exchange rounds, so mid-run kills leave a partial epoch chain behind:
    // killing the non-blocking engine at round R fires while round R is *posted*,
    // i.e. before the round R−2 commit of that iteration, leaving epochs 0..=R−3.
    cfg.batch_size = 50;
    cfg.overlap = overlap;
    cfg
}

fn healthy(path: &Path, cfg: &HySortKConfig) -> CountResult<Kmer1> {
    count_kmers_from_files_with::<Kmer1, _>(&[&path], cfg, IngestOptions::default())
        .expect("healthy run")
}

/// The exchange round to kill at: the bulk path moves all its rounds as one flat
/// exchange that fires faults at round 0, while the overlap engine reaches round 5
/// with epochs 0..=2 already committed.
fn kill_round(overlap: bool) -> usize {
    if overlap {
        5
    } else {
        0
    }
}

/// Kill the run mid-exchange with recovery disabled, leaving its epochs in `dir`.
fn kill_checkpointed_run(path: &Path, cfg: &HySortKConfig, dir: &Path, round: usize) {
    let mut cfg = cfg.clone();
    cfg.checkpoint_dir = Some(dir.to_path_buf());
    cfg.recovery_attempts = 0;
    let plan = Arc::new(FaultPlan::new().with_fault(1, "exchange", round, FaultKind::FailRank));
    let err = count_kmers_from_files_faulted::<Kmer1, _>(
        &[&path],
        &cfg,
        IngestOptions::default(),
        Arc::clone(&plan),
    )
    .expect_err("the injected kill must abort the run with recovery off");
    assert_eq!(err.exit_code(), 4, "{err}");
    assert!(plan.fired_count() > 0, "the kill never fired");
}

fn resume(
    path: &Path,
    cfg: &HySortKConfig,
    dir: &Path,
) -> Result<CountResult<Kmer1>, HysortkError> {
    let mut cfg = cfg.clone();
    cfg.checkpoint_dir = Some(dir.to_path_buf());
    cfg.resume = true;
    count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
}

/// Epoch files a kill leaves behind for `rank`, newest first.
fn manifests_of(dir: &Path, rank: usize) -> Vec<(u32, PathBuf)> {
    let suffix = format!("-r{rank:04}.bin");
    let mut found: Vec<(u32, PathBuf)> = std::fs::read_dir(dir)
        .expect("checkpoint directory")
        .map(|e| e.unwrap().path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?.to_owned();
            let epochs = name.strip_prefix("ckpt-e")?.strip_suffix(&suffix)?;
            Some((epochs.parse().ok()?, p))
        })
        .collect();
    found.sort_by_key(|(e, _)| std::cmp::Reverse(*e));
    found
}

/// The core contract, in both execution modes: kill → resume reproduces the healthy
/// histogram exactly. In overlap mode the resume restores committed epochs and skips
/// their rounds; in bulk mode the kill predates the single all-or-nothing epoch, so
/// the resume recounts from scratch — both must land on identical bytes.
#[test]
fn a_killed_run_resumes_to_the_identical_result_in_both_modes() {
    let reads = overlapping_reads(90);
    let path = tmp_path("kill.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for overlap in [false, true] {
        let dir = tmp_path(&format!("kill.dir.{overlap}"));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = resume_cfg(3, overlap);
        let baseline = healthy(&path, &cfg);
        kill_checkpointed_run(&path, &cfg, &dir, kill_round(overlap));
        if overlap {
            assert!(
                !manifests_of(&dir, 0).is_empty(),
                "the killed overlap run committed no epochs"
            );
        }
        let resumed =
            resume(&path, &cfg, &dir).unwrap_or_else(|e| panic!("overlap={overlap}: {e}"));
        assert_eq!(resumed.counts, baseline.counts, "overlap={overlap}");
        assert_eq!(resumed.histogram, baseline.histogram, "overlap={overlap}");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_file(&path).ok();
}

/// Resuming a run that already finished restores the final epoch and skips the
/// exchange entirely — in bulk mode via the single complete epoch, in overlap mode by
/// restoring past the last round.
#[test]
fn resuming_a_completed_run_skips_straight_to_the_answer() {
    let reads = overlapping_reads(91);
    let path = tmp_path("complete.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for overlap in [false, true] {
        let dir = tmp_path(&format!("complete.dir.{overlap}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = resume_cfg(3, overlap);
        cfg.checkpoint_dir = Some(dir.clone());
        let first =
            count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
                .expect("checkpointed run");
        assert!(first.report.epochs_committed >= 1, "overlap={overlap}");
        let resumed =
            resume(&path, &cfg, &dir).unwrap_or_else(|e| panic!("overlap={overlap}: {e}"));
        assert_eq!(resumed.counts, first.counts, "overlap={overlap}");
        assert_eq!(resumed.histogram, first.histogram, "overlap={overlap}");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_file(&path).ok();
}

/// Bit corruption in the newest epoch must not poison the resume: the checksum
/// rejects the manifest and restore falls back to the newest epoch every rank still
/// agrees on, then recounts the rest.
#[test]
fn bit_corruption_in_the_newest_epoch_falls_back_and_still_matches() {
    let reads = overlapping_reads(92);
    let path = tmp_path("corrupt.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    let dir = tmp_path("corrupt.dir");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = resume_cfg(3, true);
    let baseline = healthy(&path, &cfg);
    kill_checkpointed_run(&path, &cfg, &dir, kill_round(true));
    let manifests = manifests_of(&dir, 0);
    assert!(
        manifests.len() >= 2,
        "need at least two epochs to test fallback, got {}",
        manifests.len()
    );
    let newest = &manifests[0].1;
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(newest, bytes).unwrap();
    let resumed = resume(&path, &cfg, &dir).expect("resume after corruption");
    assert_eq!(resumed.counts, baseline.counts);
    assert_eq!(resumed.histogram, baseline.histogram);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}

/// A torn `.tmp` file — the artifact of a crash between fsync and rename — must be
/// ignored by restore, not parsed, and not mistaken for a committed epoch.
#[test]
fn torn_tmp_files_from_a_crashed_writer_are_ignored() {
    let reads = overlapping_reads(93);
    let path = tmp_path("torn.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    let dir = tmp_path("torn.dir");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = resume_cfg(3, true);
    let baseline = healthy(&path, &cfg);
    kill_checkpointed_run(&path, &cfg, &dir, kill_round(true));
    // A torn write from a hypothetical later epoch: garbage bytes under a tmp name.
    std::fs::write(dir.join("ckpt-e000099-r0000.bin.tmp"), b"half a manifest").unwrap();
    let resumed = resume(&path, &cfg, &dir).expect("resume around the torn file");
    assert_eq!(resumed.counts, baseline.counts);
    assert_eq!(resumed.histogram, baseline.histogram);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}

/// Resuming under a different run configuration must be a loud `Config` error — the
/// fingerprint embedded in every manifest refuses foreign checkpoints instead of
/// blending two runs into one wrong histogram.
#[test]
fn resuming_with_a_different_configuration_is_a_loud_error() {
    let reads = overlapping_reads(94);
    let path = tmp_path("foreign.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    let dir = tmp_path("foreign.dir");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = resume_cfg(3, true);
    kill_checkpointed_run(&path, &cfg, &dir, kill_round(true));

    // Same directory, different k: every manifest's fingerprint mismatches.
    let mut other = HySortKConfig::small(17, 7, 3);
    other.min_count = 1;
    other.max_count = 1_000_000;
    other.batch_size = 200;
    other.overlap = true;
    let err = resume(&path, &other, &dir).expect_err("foreign checkpoint accepted");
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(
        err.to_string().contains("different run configuration"),
        "{err}"
    );

    // Same parameters but the other execution mode is just as foreign.
    let mut bulk = cfg.clone();
    bulk.overlap = false;
    let err = resume(&path, &bulk, &dir).expect_err("cross-mode checkpoint accepted");
    assert_eq!(err.exit_code(), 2, "{err}");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}

/// Resuming after the input files changed must also be loud: the checkpoint stores a
/// hash of the allreduced task sizes, and a mismatch means the committed partials no
/// longer describe the data on disk.
#[test]
fn resuming_after_the_inputs_changed_is_a_loud_error() {
    let reads = overlapping_reads(95);
    let path = tmp_path("drift.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    let dir = tmp_path("drift.dir");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = resume_cfg(3, true);
    kill_checkpointed_run(&path, &cfg, &dir, kill_round(true));

    // Grow the input after the kill: same path, different contents.
    let mut extended = std::fs::read_to_string(&path).unwrap();
    for i in 0..10 {
        extended.push_str(&format!(">extra{i}\n"));
        extended.push_str(&"ACGTTGCAAGGTTACACGTTGCA".repeat(10));
        extended.push('\n');
    }
    std::fs::write(&path, extended).unwrap();

    let err = resume(&path, &cfg, &dir).expect_err("stale checkpoint accepted");
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("changed since"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}
