//! Chaos property harness: the file-fed pipeline under seeded fault injection.
//!
//! Every schedule drives the full pipeline — streaming ingestion, task-size
//! allreduce, (non-)blocking exchange, sort & count — with one deterministic fault
//! from [`FaultPlan::seeded`], across rank counts {1, 2, 7} and both execution modes.
//! Each run must satisfy the trichotomy:
//!
//! 1. **byte-identical counts** to the healthy baseline (the fault was absorbed:
//!    a delay, a no-op corruption, a retried transient read — or a killed rank that
//!    in-run recovery respawned), or
//! 2. a **typed error** naming the injected fault or the wire defect it caused, or
//! 3. a **clean abort** where every peer unblocks with a `PeerFailed`-rooted error —
//!    never a hang, never a silently wrong histogram.
//!
//! A wall-clock watchdog turns any deadlock into a test failure instead of a stuck
//! CI job.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use hysortk_core::ingest::{count_kmers_from_files_faulted, count_kmers_from_files_with};
use hysortk_core::{CountResult, HySortKConfig, HysortkError};
use hysortk_dmem::{FaultKind, FaultPlan};
use hysortk_dna::io::IngestOptions;
use hysortk_dna::kmer::Kmer1;
use hysortk_dna::{fasta, ReadSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hysortk_chaos_{}_{tag}", std::process::id()))
}

fn overlapping_reads(seed: u64) -> ReadSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let genome: Vec<u8> = (0..2_000).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let reads: Vec<Vec<u8>> = (0..60)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 220);
            genome[start..start + 220].to_vec()
        })
        .collect();
    ReadSet::from_ascii_reads(&reads)
}

fn chaos_cfg(ranks: usize, overlap: bool) -> HySortKConfig {
    let mut cfg = HySortKConfig::small(21, 9, ranks);
    cfg.min_count = 1;
    cfg.max_count = 1_000_000;
    // A small round budget forces several exchange rounds, so round-targeted faults
    // (round 1..4) actually have somewhere to land.
    cfg.batch_size = 200;
    cfg.overlap = overlap;
    cfg
}

/// Run `f` on its own thread with a wall-clock deadline: a deadlocked cluster fails
/// the test instead of hanging it. The result travels back over a channel; a panic in
/// `f` is re-raised by the join.
fn with_deadline<T: Send + 'static>(
    label: String,
    deadline: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            handle.join().expect("chaos worker panicked after sending");
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The closure panicked before sending; join to re-raise the panic.
            handle.join().expect("chaos worker panicked");
            unreachable!("worker disconnected without panicking");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: no result within {deadline:?} — the cluster deadlocked")
        }
    }
}

type ChaosOutcome = Result<CountResult<Kmer1>, HysortkError>;

fn run_faulted(path: &Path, cfg: &HySortKConfig, plan: &Arc<FaultPlan>) -> ChaosOutcome {
    let label = format!(
        "ranks={} overlap={} plan[{}]",
        cfg.total_ranks(),
        cfg.overlap,
        plan.describe()
    );
    let path = path.to_path_buf();
    let cfg = cfg.clone();
    let plan = Arc::clone(plan);
    with_deadline(label, Duration::from_secs(120), move || {
        count_kmers_from_files_faulted::<Kmer1, _>(&[&path], &cfg, IngestOptions::default(), plan)
    })
}

/// The tentpole: ≥ 50 seeded fault schedules across rank counts and execution modes,
/// each checked against the trichotomy. `FaultPlan::seeded` draws uniformly from all
/// five fault kinds (delays, truncations, corruptions, rank failures, transient I/O).
#[test]
fn seeded_fault_schedules_never_hang_and_never_corrupt_counts() {
    let reads = overlapping_reads(77);
    let path = tmp_path("seeded.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();

    let mut schedules = 0usize;
    let mut absorbed = 0usize;
    let mut errored = 0usize;
    for ranks in [1usize, 2, 7] {
        for overlap in [false, true] {
            let cfg = chaos_cfg(ranks, overlap);
            let baseline =
                count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
                    .expect("healthy run");
            for seed in 0..9u64 {
                schedules += 1;
                let plan = Arc::new(FaultPlan::seeded(seed, ranks, 4));
                let (_, kind) = plan.iter().next().expect("seeded plan holds one fault");
                let is_transient_io = matches!(kind, FaultKind::TransientIo { .. });
                let outcome = run_faulted(&path, &cfg, &plan);
                let fired = plan.fired_count() > 0;
                let ctx = format!(
                    "seed={seed} ranks={ranks} overlap={overlap} fault={} fired={fired}",
                    plan.describe()
                );
                match outcome {
                    Ok(result) => {
                        absorbed += 1;
                        // Absorbed faults must leave the histogram byte-identical —
                        // a "successful" run with different counts is the one
                        // forbidden outcome.
                        assert_eq!(result.counts, baseline.counts, "{ctx}");
                        assert_eq!(result.histogram, baseline.histogram, "{ctx}");
                        if fired && is_transient_io {
                            assert!(
                                result.report.io_retries >= 1,
                                "{ctx}: retried reads must show up in the report"
                            );
                        }
                        if fired && matches!(kind, FaultKind::FailRank) {
                            // A killed rank can only land in the absorbed arm via
                            // in-run recovery, and the report must say so.
                            assert!(
                                result.report.recoveries >= 1,
                                "{ctx}: a fired rank failure absorbed without recovery"
                            );
                        }
                    }
                    Err(e) => {
                        errored += 1;
                        assert!(fired, "{ctx}: error {e} without any fault firing");
                        assert!(
                            matches!(e.exit_code(), 3 | 4),
                            "{ctx}: unexpected exit code for {e}"
                        );
                        if matches!(kind, FaultKind::FailRank) {
                            // Aggregation must keep the root cause, not a peer echo.
                            assert!(
                                e.to_string().contains("injected fault"),
                                "{ctx}: expected the injected fault as root cause, got {e}"
                            );
                        }
                        assert!(
                            !matches!(kind, FaultKind::DelayPost { .. }),
                            "{ctx}: a pure delay must never fail a run, got {e}"
                        );
                    }
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
    assert!(schedules >= 50, "only {schedules} schedules ran");
    // The seeded generator draws all five kinds, so both arms of the trichotomy must
    // be populated — otherwise the harness is vacuous.
    assert!(absorbed > 0, "no schedule was absorbed cleanly");
    assert!(errored > 0, "no schedule surfaced a typed error");
}

/// Pinned regression: with recovery disabled, a rank failing mid-exchange unblocks
/// every peer, and the aggregated error names the injected failure (not a timeout,
/// not a peer echo). `recovery_attempts = 0` restores the fail-fast contract that
/// in-run recovery would otherwise absorb.
#[test]
fn rank_failure_mid_exchange_unblocks_all_peers_when_recovery_is_off() {
    let reads = overlapping_reads(78);
    let path = tmp_path("failrank.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for overlap in [false, true] {
        let mut cfg = chaos_cfg(4, overlap);
        cfg.recovery_attempts = 0;
        let plan = Arc::new(FaultPlan::new().with_fault(1, "exchange", 0, FaultKind::FailRank));
        let err = run_faulted(&path, &cfg, &plan).expect_err("rank 1 was killed");
        assert_eq!(err.exit_code(), 4, "overlap={overlap}");
        let msg = err.to_string();
        assert!(
            msg.contains("injected fault") && msg.contains("rank 1"),
            "overlap={overlap}: {msg}"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The acceptance matrix for in-run recovery: on clusters of 2 and 7 ranks, in both
/// execution modes, a single injected rank failure is healed by respawning the
/// failed rank, and the run completes with counts byte-identical to the fault-free
/// baseline.
#[test]
fn killed_ranks_recover_in_run_to_byte_identical_counts() {
    let reads = overlapping_reads(81);
    let path = tmp_path("recover.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for ranks in [2usize, 7] {
        for overlap in [false, true] {
            let cfg = chaos_cfg(ranks, overlap);
            let baseline =
                count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
                    .expect("healthy run");
            let victim = ranks - 1;
            let plan =
                Arc::new(FaultPlan::new().with_fault(victim, "exchange", 0, FaultKind::FailRank));
            let result = run_faulted(&path, &cfg, &plan)
                .unwrap_or_else(|e| panic!("ranks={ranks} overlap={overlap}: {e}"));
            assert!(
                plan.fired_count() > 0,
                "ranks={ranks} overlap={overlap}: the kill never fired"
            );
            assert_eq!(
                result.counts, baseline.counts,
                "ranks={ranks} overlap={overlap}"
            );
            assert_eq!(
                result.histogram, baseline.histogram,
                "ranks={ranks} overlap={overlap}"
            );
            assert!(
                result.report.recoveries >= 1,
                "ranks={ranks} overlap={overlap}: recovery not reported"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// With a checkpoint directory configured, a respawned rank restores the last
/// committed epoch instead of recounting from scratch — and still lands on the exact
/// fault-free histogram, with the committed epochs visible in the report.
#[test]
fn recovery_resumes_from_committed_epochs() {
    let reads = overlapping_reads(82);
    let path = tmp_path("ckptrec.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for overlap in [false, true] {
        let dir = tmp_path(&format!("ckptrec.dir.{overlap}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = chaos_cfg(3, overlap);
        // Enough rounds that the overlap kill lands after a few committed epochs.
        cfg.batch_size = 50;
        let baseline =
            count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
                .expect("healthy run");
        cfg.checkpoint_dir = Some(dir.clone());
        // The bulk path moves all its rounds as one flat exchange that fires faults
        // at round 0; the overlap engine is killed at round 5, past epochs 0..=2.
        let round = if overlap { 5 } else { 0 };
        let plan = Arc::new(FaultPlan::new().with_fault(1, "exchange", round, FaultKind::FailRank));
        let result =
            run_faulted(&path, &cfg, &plan).unwrap_or_else(|e| panic!("overlap={overlap}: {e}"));
        assert!(
            plan.fired_count() > 0,
            "overlap={overlap}: the kill never fired"
        );
        assert_eq!(result.counts, baseline.counts, "overlap={overlap}");
        assert_eq!(result.histogram, baseline.histogram, "overlap={overlap}");
        assert!(result.report.recoveries >= 1, "overlap={overlap}");
        assert!(
            result.report.epochs_committed >= 1,
            "overlap={overlap}: no epochs committed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_file(&path).ok();
}

/// The nastiest crash window: a rank dies between fsync and rename while committing
/// an epoch, leaving a torn `.tmp` behind. The respawned generation must ignore the
/// torn file, fall back to the newest epoch every rank agrees on, and still finish
/// byte-identical.
#[test]
fn a_crash_mid_checkpoint_write_falls_back_to_the_previous_epoch() {
    let reads = overlapping_reads(83);
    let path = tmp_path("torncrash.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    let dir = tmp_path("torncrash.dir");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = chaos_cfg(3, true);
    cfg.batch_size = 50;
    let baseline =
        count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
            .expect("healthy run");
    cfg.checkpoint_dir = Some(dir.clone());
    // Epoch 0 commits cleanly; the crash lands while epoch 1 is being written.
    let plan = Arc::new(FaultPlan::new().with_fault(1, "checkpoint", 1, FaultKind::FailRank));
    let result = run_faulted(&path, &cfg, &plan).unwrap_or_else(|e| panic!("{e}"));
    assert!(plan.fired_count() > 0, "the mid-commit crash never fired");
    assert_eq!(result.counts, baseline.counts);
    assert_eq!(result.histogram, baseline.histogram);
    assert!(result.report.recoveries >= 1);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}

/// Pinned regression for the checksum blind spot: a segment truncated to a *valid
/// empty stream* parses cleanly block by block, so only the end-of-exchange
/// reconciliation against the allreduced task sizes can catch it. It must surface as
/// a typed count-mismatch, never as silently shrunken counts.
#[test]
fn truncation_to_a_clean_block_boundary_is_caught_by_reconciliation() {
    let reads = overlapping_reads(79);
    let path = tmp_path("boundary.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for overlap in [false, true] {
        let cfg = chaos_cfg(2, overlap);
        let plan = Arc::new(FaultPlan::new().with_fault(
            0,
            "exchange",
            0,
            FaultKind::TruncateSegment { dest: 1, keep: 0 },
        ));
        let err = run_faulted(&path, &cfg, &plan).expect_err("dropped segment");
        assert_eq!(err.exit_code(), 4, "overlap={overlap}");
        assert!(
            err.to_string().contains("lost or duplicated") || err.to_string().contains("truncated"),
            "overlap={overlap}: {err}"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The chaos matrix on the **process backend**: forked rank processes under (a) an
/// injected rank kill healed by respawning a whole process generation and (b) a
/// transient ingest failure absorbed by bounded retry inside the child — each
/// byte-identical to the healthy baseline, in both execution modes. A final
/// `waitpid(-1)` sweep asserts the parent reaped every forked child: no orphaned
/// processes, no zombies. (Only this test forks, so sweeping pid -1 cannot steal
/// another test's children.)
#[test]
fn process_backend_absorbs_kills_and_transient_io_without_orphans() {
    mod ffi {
        extern "C" {
            pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        }
    }
    const WNOHANG: i32 = 1;

    let reads = overlapping_reads(84);
    let path = tmp_path("procchaos.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();

    for overlap in [false, true] {
        let mut cfg = chaos_cfg(3, overlap);
        let baseline =
            count_kmers_from_files_with::<Kmer1, _>(&[&path], &cfg, IngestOptions::default())
                .expect("healthy run");
        cfg.backend = hysortk_dmem::Backend::Process;

        // (a) Kill rank 1 mid-exchange: the parent must respawn a fresh process
        // generation, and the fired-state must come back over the control socket so
        // the kill does not fire again in generation 1.
        let plan = Arc::new(FaultPlan::new().with_fault(1, "exchange", 0, FaultKind::FailRank));
        let result = run_faulted(&path, &cfg, &plan)
            .unwrap_or_else(|e| panic!("overlap={overlap} fail-rank: {e}"));
        assert_eq!(
            plan.fired_count(),
            1,
            "overlap={overlap}: fired-state not absorbed from the child"
        );
        assert_eq!(
            result.counts, baseline.counts,
            "overlap={overlap} fail-rank"
        );
        assert_eq!(
            result.histogram, baseline.histogram,
            "overlap={overlap} fail-rank"
        );
        assert!(
            result.report.recoveries >= 1,
            "overlap={overlap}: recovery not reported"
        );

        // (b) Transient ingest failures retried inside the child; the io_retries
        // counter must survive the wire trip back to the parent.
        let plan = Arc::new(FaultPlan::new().with_fault(
            2,
            "ingest",
            0,
            FaultKind::TransientIo { failures: 2 },
        ));
        let result = run_faulted(&path, &cfg, &plan)
            .unwrap_or_else(|e| panic!("overlap={overlap} transient-io: {e}"));
        assert!(
            plan.fired_count() > 0,
            "overlap={overlap}: the transient fault never fired"
        );
        assert_eq!(
            result.counts, baseline.counts,
            "overlap={overlap} transient-io"
        );
        assert!(
            result.report.io_retries >= 1,
            "overlap={overlap}: retried reads must survive the wire trip"
        );
    }

    // Every fork must already be reaped: 0 would mean a still-running orphaned
    // child, a positive pid an unreaped zombie; -1 (ECHILD) says no children remain.
    let mut status = 0i32;
    let rc = unsafe { ffi::waitpid(-1, &mut status, WNOHANG) };
    assert_eq!(rc, -1, "unreaped child process (waitpid returned {rc})");

    std::fs::remove_file(&path).ok();
}

/// Corrupted wire bytes must be rejected by the per-block checksum with the rank and
/// round attached — on both execution modes.
#[test]
fn corrupted_wire_segments_surface_as_checksum_errors() {
    let reads = overlapping_reads(80);
    let path = tmp_path("corrupt.fa");
    fasta::write_fasta_file(&path, &reads, 70).unwrap();
    for overlap in [false, true] {
        let cfg = chaos_cfg(2, overlap);
        let plan = Arc::new(FaultPlan::new().with_fault(
            0,
            "exchange",
            0,
            FaultKind::CorruptSegment { dest: 1, bit: 201 },
        ));
        let err = run_faulted(&path, &cfg, &plan).expect_err("corrupted segment");
        assert_eq!(err.exit_code(), 4, "overlap={overlap}");
        let msg = err.to_string();
        assert!(
            msg.contains("malformed wire data"),
            "overlap={overlap}: {msg}"
        );
    }
    std::fs::remove_file(&path).ok();
}
