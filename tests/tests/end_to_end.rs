//! Cross-crate integration tests: every counter, the full HySortK pipeline in all modes,
//! and the ELBA integration, validated end-to-end against the reference counter.

use hysortk_baselines::{
    kmc3_count, kmerind_count, mhm2_count, two_pass_hash_count, KmerindOutcome,
};
use hysortk_core::{count_kmers, reference_counts_bounded, HySortKConfig};
use hysortk_datasets::{DatasetPreset, GeneratedDataset};
use hysortk_dna::{fasta, Kmer1, Kmer2};
use hysortk_elba::{run_elba, CounterChoice, ElbaConfig};

fn dataset() -> GeneratedDataset {
    DatasetPreset::ABaumannii.generate(1.5e-4, 1234)
}

fn config(data: &GeneratedDataset, k: usize, ranks: usize) -> HySortKConfig {
    let mut cfg = HySortKConfig::small(k, HySortKConfig::recommended_m(k), ranks);
    cfg.min_count = 2;
    cfg.max_count = 10_000;
    cfg.data_scale = data.data_scale;
    cfg
}

#[test]
fn every_counter_agrees_with_the_reference_and_each_other() {
    let data = dataset();
    let cfg = config(&data, 21, 4);
    let expected = reference_counts_bounded::<Kmer1>(&data.reads, 21, 2, 10_000);

    let hysortk = count_kmers::<Kmer1>(&data.reads, &cfg);
    assert_eq!(hysortk.counts, expected, "HySortK");

    let hash = two_pass_hash_count::<Kmer1>(&data.reads, &cfg);
    assert_eq!(hash.counts, expected, "two-pass hash table");

    let kmc = kmc3_count::<Kmer1>(&data.reads, &cfg);
    assert_eq!(kmc.counts, expected, "KMC3-style");

    let gpu = mhm2_count::<Kmer1>(&data.reads, &cfg);
    assert_eq!(gpu.counts, expected, "MHM2-style");

    match kmerind_count::<Kmer1>(&data.reads, &cfg) {
        KmerindOutcome::Completed(res) => assert_eq!(res.counts, expected, "kmerind-style"),
        KmerindOutcome::OutOfMemory { .. } => panic!("kmerind should fit on this tiny dataset"),
    }
}

#[test]
fn large_k_counting_uses_two_word_kmers_end_to_end() {
    let data = dataset();
    let mut cfg = config(&data, 55, 3);
    cfg.m = 23;
    let result = count_kmers::<Kmer2>(&data.reads, &cfg);
    let expected = reference_counts_bounded::<Kmer2>(&data.reads, 55, 2, 10_000);
    assert_eq!(result.counts, expected);
}

#[test]
fn fasta_round_trip_feeds_the_counter() {
    let data = dataset();
    let text = fasta::to_fasta_string(&data.reads, 80);
    let parsed = fasta::parse_fasta_str(&text);
    assert_eq!(parsed.len(), data.reads.len());
    let cfg = config(&data, 17, 2);
    let from_original = count_kmers::<Kmer1>(&data.reads, &cfg);
    let from_fasta = count_kmers::<Kmer1>(&parsed, &cfg);
    assert_eq!(from_original.counts, from_fasta.counts);
}

#[test]
fn counting_is_deterministic_across_cluster_sizes_and_layouts() {
    let data = dataset();
    let mut results = Vec::new();
    for ranks in [1usize, 2, 5, 8] {
        let mut cfg = config(&data, 21, ranks);
        cfg.tasks_per_worker = 1 + ranks % 3;
        results.push(count_kmers::<Kmer1>(&data.reads, &cfg).counts);
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn reports_expose_consistent_projections() {
    let data = dataset();
    let cfg = config(&data, 21, 4);
    let result = count_kmers::<Kmer1>(&data.reads, &cfg);
    let report = &result.report;
    assert_eq!(report.retained_kmers as usize, result.counts.len());
    assert_eq!(report.distinct_kmers, result.histogram.distinct());
    assert!(report.total_kmers >= report.distinct_kmers);
    assert!(report.total_time() > 0.0);
    assert!(report.stage_times.get("exchange") > 0.0);
    assert!(report.stage_times.get("sort") > 0.0);
    assert!(report.peak_memory_per_node > 0);
    // Traffic recorded by the simulated cluster must be non-trivial with 4 ranks.
    assert!(report.comm.payload_bytes > 0);
}

#[test]
fn elba_with_hysortk_assembles_and_is_fastest() {
    let data = dataset();
    let mut best_total = f64::INFINITY;
    let mut hysortk_total = 0.0;
    for (counter, procs, threads) in [
        (CounterChoice::Original, 64, 1),
        (CounterChoice::Original, 4, 16),
        (CounterChoice::HySortK, 4, 16),
    ] {
        let mut cfg = ElbaConfig::figure10(counter, procs, threads);
        cfg.data_scale = data.data_scale;
        let result = run_elba::<Kmer1>(&data.reads, &cfg);
        assert!(!result.contigs.is_empty(), "pipeline produced no contigs");
        if counter == CounterChoice::HySortK {
            hysortk_total = result.total_time();
        }
        best_total = best_total.min(result.total_time());
    }
    assert!(
        (hysortk_total - best_total).abs() < 1e-9,
        "the HySortK-integrated pipeline should be the fastest configuration"
    );
}
