//! Randomised property tests on the core data structures and invariants.
//!
//! The build environment is offline, so instead of `proptest` these use a seeded
//! [`StdRng`] case loop: every property runs over a few dozen random cases whose seeds
//! are fixed, making failures reproducible while still sweeping a wide input space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hysortk_dna::{DnaSeq, Extension, Kmer1, Kmer2, ReadSet};
use hysortk_sort::{
    paradis_sort, paradis_sort_by, raduls_sort, raduls_sort_by, sample_sort_by_key,
};
use hysortk_supermer::codec::{decode_extensions, encode_extensions};
use hysortk_supermer::minimizer::{minimizers_deque, minimizers_naive};
use hysortk_supermer::mmer::{MmerScorer, ScoreFunction};
use hysortk_supermer::streaming::{for_each_supermer, SupermerScratch};
use hysortk_supermer::supermer::{build_supermers, Supermer};

/// A random DNA string over ACGT of length `0..max_len`.
fn dna(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

fn dna_exact(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

// ---------------- k-mer packing ------------------------------------------------------

#[test]
fn kmer_pack_unpack_round_trips() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..64 {
        let k = rng.gen_range(1..=32usize);
        let seq = dna_exact(&mut rng, k);
        let km = Kmer1::from_ascii(&seq);
        assert_eq!(km.to_string_k(k).as_bytes(), &seq[..]);
    }
}

#[test]
fn kmer2_reverse_complement_is_an_involution() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..64 {
        let k = rng.gen_range(1..=64usize);
        let km = Kmer2::from_ascii(&dna_exact(&mut rng, k));
        assert_eq!(km.reverse_complement(k).reverse_complement(k), km);
    }
}

#[test]
fn kmer_ordering_matches_string_ordering() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..64 {
        let len = rng.gen_range(1..21usize);
        let a = dna_exact(&mut rng, len);
        let b = dna_exact(&mut rng, len);
        let ka = Kmer1::from_ascii(&a);
        let kb = Kmer1::from_ascii(&b);
        assert_eq!(ka.cmp(&kb), a.cmp(&b), "{:?} vs {:?}", a, b);
    }
}

#[test]
fn canonical_kmer_is_strand_invariant() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..64 {
        let k = rng.gen_range(1..=32usize);
        let km = Kmer1::from_ascii(&dna_exact(&mut rng, k));
        let rc = km.reverse_complement(k);
        assert_eq!(km.canonical(k), rc.canonical(k));
    }
}

// ---------------- packed sequences ---------------------------------------------------

#[test]
fn dnaseq_round_trips_and_counts_kmers() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..64 {
        let seq = dna(&mut rng, 500);
        let k = rng.gen_range(1..40usize);
        let packed = DnaSeq::from_ascii(&seq);
        assert_eq!(packed.to_ascii(), seq);
        let expected = if seq.len() >= k { seq.len() - k + 1 } else { 0 };
        assert_eq!(packed.num_kmers(k), expected);
    }
}

// ---------------- sorting ------------------------------------------------------------

#[test]
fn radix_sorts_agree_with_std_sort() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..32 {
        let n = rng.gen_range(0..3000usize);
        let v: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut a = v.clone();
        paradis_sort_by(&mut a, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(a, expected);
        let mut b = v;
        raduls_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(b, expected);
    }
}

#[test]
fn monomorphized_kernels_match_closure_paths_on_u64_records() {
    // The RadixKey kernels must produce exactly the ordering of the closure-based
    // paths they replace — including stability for the RADULS pair (payloads of equal
    // keys keep their relative order).
    let mut rng = StdRng::seed_from_u64(107);
    for round in 0..24 {
        let n = rng.gen_range(0..40_000usize);
        let few_keys = round % 2 == 0;
        let v: Vec<(u64, u32)> = (0..n as u32)
            .map(|i| {
                let key = if few_keys {
                    rng.gen_range(0..97u64)
                } else {
                    rng.gen()
                };
                (key, i)
            })
            .collect();

        let mut kernel = v.clone();
        raduls_sort(&mut kernel);
        let mut closure = v.clone();
        raduls_sort_by(&mut closure, 8, |x, l| (x.0 >> (8 * (7 - l))) as u8);
        assert_eq!(kernel, closure, "raduls kernel diverged (n = {n})");

        let mut kernel = v.clone();
        paradis_sort(&mut kernel);
        let mut closure = v.clone();
        paradis_sort_by(&mut closure, 8, |x, l| (x.0 >> (8 * (7 - l))) as u8);
        // PARADIS is not stable; compare the grouping, not the payload order.
        kernel.sort_unstable();
        closure.sort_unstable();
        assert_eq!(kernel, closure, "paradis kernel diverged (n = {n})");
    }
}

#[test]
fn monomorphized_kernels_match_closure_paths_on_u128_records() {
    let mut rng = StdRng::seed_from_u64(108);
    let digit = |x: &(u128, u32), l: usize| (x.0 >> (8 * (15 - l))) as u8;
    for _ in 0..12 {
        let n = rng.gen_range(0..30_000usize);
        // Mask some keys down so whole levels go trivial across the word boundary.
        let mask = if rng.gen_bool(0.5) {
            u128::MAX
        } else {
            0xFFFF_FFFF_FFFF_FFFF_FFFF
        }; // 80 bits
        let v: Vec<(u128, u32)> = (0..n as u32)
            .map(|i| (rng.gen::<u128>() & mask, i))
            .collect();

        let mut kernel = v.clone();
        raduls_sort(&mut kernel);
        let mut closure = v.clone();
        raduls_sort_by(&mut closure, 16, digit);
        assert_eq!(kernel, closure, "raduls kernel diverged (n = {n})");

        let mut kernel = v.clone();
        paradis_sort(&mut kernel);
        let mut expected = v.clone();
        expected.sort_unstable();
        kernel.sort_unstable();
        assert_eq!(kernel, expected, "paradis kernel diverged (n = {n})");
    }
}

#[test]
fn sample_sort_agrees_with_std_sort() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..32 {
        let n = rng.gen_range(0..3000usize);
        let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        sample_sort_by_key(&mut v, 4, |x| *x);
        assert_eq!(v, expected);
    }
}

// ---------------- flat exchange ------------------------------------------------------

#[test]
fn flat_exchange_round_trips_against_the_nested_path() {
    // Random irregular send matrices: the flat-buffer exchange must deliver exactly
    // the bytes the nested-vector path delivers, rank for rank.
    use hysortk_dmem::Cluster;
    for seed in 0..6u64 {
        let p = 2 + (seed as usize % 4);
        let run = Cluster::new(p).run(|ctx| {
            let mut rng = StdRng::seed_from_u64(seed * 100 + ctx.rank() as u64);
            let nested: Vec<Vec<u8>> = (0..ctx.size())
                .map(|_| {
                    let len = rng.gen_range(0..200usize);
                    (0..len).map(|_| rng.gen()).collect()
                })
                .collect();
            let counts: Vec<usize> = nested.iter().map(Vec::len).collect();
            let flat: Vec<u8> = nested.iter().flatten().copied().collect();
            let from_nested = ctx.alltoallv(nested, "nested").expect("no faults injected");
            let from_flat = ctx
                .alltoallv_flat(flat, &counts, "flat")
                .expect("no faults injected");
            (0..ctx.size()).all(|src| from_nested[src].as_slice() == from_flat.from_rank(src))
        });
        assert!(
            run.results.into_iter().all(|ok| ok),
            "mismatch for seed {seed}"
        );
    }
}

// ---------------- minimizers and supermers -------------------------------------------

#[test]
fn deque_minimizers_equal_naive_minimizers() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..48 {
        let seq = dna(&mut rng, 400);
        let m = rng.gen_range(3..16usize);
        let window = rng.gen_range(0..30usize);
        let k = m + window;
        let packed = DnaSeq::from_ascii(&seq);
        let scorer = MmerScorer::new(m, ScoreFunction::Hash { seed: 17 });
        assert_eq!(
            minimizers_deque(&packed, k, &scorer),
            minimizers_naive(&packed, k, &scorer),
            "m = {m}, k = {k}"
        );
    }
}

#[test]
fn supermers_partition_the_kmers_of_a_read() {
    let mut rng = StdRng::seed_from_u64(111);
    let mut checked = 0;
    while checked < 32 {
        let seq = dna(&mut rng, 600);
        if seq.len() < 31 {
            continue;
        }
        checked += 1;
        let targets = rng.gen_range(1..64u32);
        let read = hysortk_dna::Read::from_ascii(0, "p", &seq);
        let scorer = MmerScorer::new(11, ScoreFunction::Hash { seed: 3 });
        let supermers = build_supermers(&read, 31, &scorer, targets);
        let total: usize = supermers.iter().map(|s| s.num_kmers(31)).sum();
        assert_eq!(total, read.seq.num_kmers(31));
        let mut from_supermers: Vec<Kmer1> = supermers
            .iter()
            .flat_map(|s| {
                s.canonical_kmers_with_pos::<Kmer1>(31)
                    .into_iter()
                    .map(|(km, _)| km)
            })
            .collect();
        let mut direct: Vec<Kmer1> = read.seq.canonical_kmers(31).collect();
        from_supermers.sort();
        direct.sort();
        assert_eq!(from_supermers, direct);
    }
}

#[test]
fn streaming_extractor_is_byte_identical_to_build_supermers() {
    // The fused streaming pass (ring-buffer deque, span callbacks, word-level
    // subrange copies) must reproduce the vec-based reference exactly: same read ids,
    // same offsets, same packed bases, same targets — over random k/m/targets,
    // including reads shorter than k and m == k windows.
    let mut rng = StdRng::seed_from_u64(112);
    let mut scratch = SupermerScratch::new();
    for trial in 0..48 {
        let seq = dna(&mut rng, 500);
        let m = rng.gen_range(1..=16usize);
        let k = m + rng.gen_range(0..30usize);
        let targets = rng.gen_range(1..64u32);
        let read = hysortk_dna::Read::from_ascii(trial, "s", &seq);
        let scorer = MmerScorer::new(m, ScoreFunction::Hash { seed: 17 });

        let mut streamed: Vec<Supermer> = Vec::new();
        for_each_supermer(&read.seq, k, &scorer, targets, &mut scratch, |span| {
            streamed.push(Supermer {
                read_id: read.id,
                start: span.start,
                seq: read.seq.subseq(span.start as usize, span.len()),
                target: span.target,
            });
        });
        assert_eq!(
            streamed,
            build_supermers(&read, k, &scorer, targets),
            "trial={trial} k={k} m={m} targets={targets}"
        );
    }
}

// ---------------- extension codec ----------------------------------------------------

#[test]
fn extension_codec_round_trips() {
    let mut rng = StdRng::seed_from_u64(112);
    for _ in 0..64 {
        let n = rng.gen_range(0..500usize);
        let records: Vec<Extension> = (0..n)
            .map(|_| Extension::new(rng.gen(), rng.gen()))
            .collect();
        let encoded = encode_extensions(&records);
        assert_eq!(decode_extensions(&encoded), Some(records.clone()));
        // Lossless and never larger than ~9/8 of the raw encoding.
        assert!(encoded.wire_bytes() <= records.len() * 9);
    }
}

// ---------------- counting invariants ------------------------------------------------

#[test]
fn hysortk_counts_match_reference_on_arbitrary_reads() {
    let mut rng = StdRng::seed_from_u64(113);
    for _ in 0..16 {
        let num_reads = rng.gen_range(1..12usize);
        let seqs: Vec<Vec<u8>> = (0..num_reads).map(|_| dna(&mut rng, 200)).collect();
        let k = rng.gen_range(5..24usize);
        let ranks = rng.gen_range(1..5usize);
        let reads = ReadSet::from_ascii_reads(&seqs);
        let mut cfg = hysortk_core::HySortKConfig::small(k, (k / 2).max(3), ranks);
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        let result = hysortk_core::count_kmers::<Kmer1>(&reads, &cfg);
        let expected = hysortk_core::reference_counts_bounded::<Kmer1>(&reads, k, 1, 1_000_000);
        assert_eq!(result.counts, expected, "k = {k}, ranks = {ranks}");
        assert_eq!(result.report.distinct_kmers, result.histogram.distinct());
    }
}

// ---------------- overlapped round engine vs bulk-synchronous exchange --------------

/// Compare the full pipeline in both execution modes on one configuration: the
/// non-blocking round engine (`overlap = true`) must be byte-identical to the
/// bulk-synchronous path (`overlap = false`) — counts, extensions and histogram.
fn assert_overlap_matches_bulk(
    reads: &ReadSet,
    cfg: &hysortk_core::HySortKConfig,
    context: &str,
) -> hysortk_core::CountResult<Kmer1> {
    let mut bulk_cfg = cfg.clone();
    bulk_cfg.overlap = false;
    let bulk = hysortk_core::count_kmers::<Kmer1>(reads, &bulk_cfg);
    let mut overlap_cfg = cfg.clone();
    overlap_cfg.overlap = true;
    let overlapped = hysortk_core::count_kmers::<Kmer1>(reads, &overlap_cfg);
    assert_eq!(overlapped.counts, bulk.counts, "counts: {context}");
    assert_eq!(
        overlapped.extensions, bulk.extensions,
        "extensions: {context}"
    );
    assert_eq!(overlapped.histogram, bulk.histogram, "histogram: {context}");
    assert_eq!(
        overlapped
            .report
            .comm
            .stage("exchange")
            .unwrap()
            .payload_bytes,
        bulk.report.comm.stage("exchange").unwrap().payload_bytes,
        "round payloads must conserve the bulk payload: {context}"
    );
    overlapped
}

/// A machine whose memory forces the in-place sorter (PARADIS) vs one with room for
/// the out-of-place RADULS path — the knob the pipeline's sorter selection reads.
fn machine_for_sorter(raduls: bool) -> hysortk_perfmodel::MachineConfig {
    // The memory model reserves 16 GiB for OS + runtime; 8 GiB of DRAM therefore
    // leaves nothing for the RADULS ping-pong buffer and selects PARADIS. 16 cores
    // keep the grid's widest layout (7 ranks × 2 threads) within the node.
    hysortk_perfmodel::MachineConfig::workstation(16, if raduls { 64 } else { 8 })
}

#[test]
fn overlapped_pipeline_is_byte_identical_to_bulk_across_the_grid() {
    // Ranks × batch sizes {1 record, the small-config default, larger than the input}
    // × both sorters × extensions on/off, on random reads with genuine multiplicities.
    let mut rng = StdRng::seed_from_u64(200);
    let genome: Vec<u8> = (0..2_000).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let seqs: Vec<Vec<u8>> = (0..60)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 250);
            genome[start..start + 250].to_vec()
        })
        .collect();
    let reads = ReadSet::from_ascii_reads(&seqs);

    for ranks in [1usize, 2, 7] {
        for batch_size in [1usize, 4_096, 1_000_000_000] {
            for raduls in [true, false] {
                for with_extension in [false, true] {
                    let mut cfg = hysortk_core::HySortKConfig::small(21, 9, ranks);
                    cfg.min_count = 1;
                    cfg.max_count = 1_000_000;
                    cfg.batch_size = batch_size;
                    cfg.machine = machine_for_sorter(raduls);
                    cfg.with_extension = with_extension;
                    let context = format!(
                        "ranks={ranks} batch={batch_size} raduls={raduls} ext={with_extension}"
                    );
                    let result = assert_overlap_matches_bulk(&reads, &cfg, &context);
                    let expected_sorter = if raduls {
                        hysortk_perfmodel::SortAlgorithm::Raduls
                    } else {
                        hysortk_perfmodel::SortAlgorithm::Paradis
                    };
                    assert_eq!(result.report.sorter, expected_sorter, "{context}");
                    // Also pin the overlapped output against the oracle.
                    let expected =
                        hysortk_core::reference_counts_bounded::<Kmer1>(&reads, 21, 1, 1_000_000);
                    assert_eq!(result.counts, expected, "{context}");
                }
            }
        }
    }
}

#[test]
fn overlapped_pipeline_matches_bulk_on_heavy_hitter_workloads() {
    // Satellite repeats trigger the heavy-hitter kmerlist conversion; the pre-counted
    // wire form must flow through the round engine identically, at single-record
    // batches (maximum round count) and the default batch.
    let mut seqs: Vec<Vec<u8>> = Vec::new();
    for _ in 0..40 {
        seqs.push(b"AATGG".repeat(60));
    }
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..40 {
        seqs.push((0..300).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect());
    }
    let reads = ReadSet::from_ascii_reads(&seqs);

    for ranks in [2usize, 7] {
        for batch_size in [1usize, 4_096] {
            let mut cfg = hysortk_core::HySortKConfig::small(15, 7, ranks);
            cfg.min_count = 1;
            cfg.max_count = 1_000_000;
            cfg.batch_size = batch_size;
            cfg.heavy_hitter = hysortk_task::HeavyHitterPolicy {
                factor: 2.0,
                enabled: true,
            };
            let context = format!("heavy ranks={ranks} batch={batch_size}");
            let result = assert_overlap_matches_bulk(&reads, &cfg, &context);
            assert!(
                result.report.heavy_tasks > 0,
                "{context}: workload not heavy"
            );
        }
    }
}

#[test]
fn overlapped_records_ablation_matches_bulk_with_and_without_compression() {
    // The non-supermer (records) ablation path through the round engine, both
    // extension codecs.
    let mut rng = StdRng::seed_from_u64(202);
    let seqs: Vec<Vec<u8>> = (0..25).map(|_| dna_exact(&mut rng, 150)).collect();
    let reads = ReadSet::from_ascii_reads(&seqs);
    for compress in [false, true] {
        let mut cfg = hysortk_core::HySortKConfig::small(17, 8, 3);
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        cfg.use_supermers = false;
        cfg.with_extension = true;
        cfg.compress_extension = compress;
        cfg.batch_size = 64;
        assert_overlap_matches_bulk(&reads, &cfg, &format!("records compress={compress}"));
    }
}

// ---------------- process backend vs thread backend ----------------------------------

#[test]
fn process_backend_is_byte_identical_to_thread_backend_across_the_grid() {
    // Forked rank processes moving every byte over UNIX domain sockets must reproduce
    // the in-process channel backend exactly — counts, extensions, histogram and
    // exchanged payload bytes — across rank counts, both exchange modes and both
    // sorters, on reads with genuine multiplicities.
    let mut rng = StdRng::seed_from_u64(210);
    let genome: Vec<u8> = (0..1_500).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let seqs: Vec<Vec<u8>> = (0..40)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 200);
            genome[start..start + 200].to_vec()
        })
        .collect();
    let reads = ReadSet::from_ascii_reads(&seqs);

    for ranks in [1usize, 2, 7] {
        for overlap in [false, true] {
            for raduls in [true, false] {
                let mut cfg = hysortk_core::HySortKConfig::small(21, 9, ranks);
                cfg.min_count = 1;
                cfg.max_count = 1_000_000;
                cfg.batch_size = 2_048;
                cfg.machine = machine_for_sorter(raduls);
                cfg.with_extension = true;
                cfg.overlap = overlap;
                let context = format!("ranks={ranks} overlap={overlap} raduls={raduls}");

                cfg.backend = hysortk_dmem::Backend::Thread;
                let thread = hysortk_core::count_kmers::<Kmer1>(&reads, &cfg);
                cfg.backend = hysortk_dmem::Backend::Process;
                let process = hysortk_core::count_kmers::<Kmer1>(&reads, &cfg);

                assert_eq!(process.counts, thread.counts, "counts: {context}");
                assert_eq!(
                    process.extensions, thread.extensions,
                    "extensions: {context}"
                );
                assert_eq!(process.histogram, thread.histogram, "histogram: {context}");
                assert_eq!(
                    process.report.comm.stage("exchange").unwrap().payload_bytes,
                    thread.report.comm.stage("exchange").unwrap().payload_bytes,
                    "exchange payload: {context}"
                );
            }
        }
    }
}

// ---------------- stage 3: parallel decode + count vs sequential reference -----------

/// Build one rank's receive segments from random reads: supermer blocks partitioned by
/// minimizer target (so identical k-mers always land in the same task, as in the real
/// pipeline), with a chosen subset of targets shipped as pre-counted kmerlists instead
/// (the heavy-hitter wire form), plus structurally empty blocks on an extra task.
fn stage3_segments(
    rng: &mut StdRng,
    sources: usize,
    tasks: u32,
    k: usize,
    tie_heavy: bool,
) -> Vec<Vec<u8>> {
    use hysortk_core::wire::{write_block, SupermerBlockWriter, TaskPayload};
    use hysortk_sort::count_sorted_runs;

    let scorer = MmerScorer::new((k / 2).max(3), ScoreFunction::Hash { seed: 9 });
    // Roughly a third of the targets ship as kmerlists, so some tasks are
    // kmerlist-only and some mix supermer blocks with kmerlists across sources.
    let heavy_targets: Vec<u32> = (0..tasks).filter(|t| t % 3 == 0).collect();
    let mut segments = vec![Vec::new(); sources];
    let mut read_id = 0u32;
    for segment in &mut segments {
        let num_reads = rng.gen_range(1..6usize);
        for _ in 0..num_reads {
            let bases = if tie_heavy {
                // Satellite repeats: long runs of identical k-mers, worst case for the
                // run scan and the kmerlist merge.
                b"AATGG".repeat(rng.gen_range(10..40))
            } else {
                let len = rng.gen_range(k..260);
                dna_exact(rng, len)
            };
            let read = hysortk_dna::Read::from_ascii(read_id, format!("r{read_id}"), &bases);
            read_id += 1;
            let mut per_task: Vec<Vec<Supermer>> = vec![Vec::new(); tasks as usize];
            for sm in build_supermers(&read, k, &scorer, tasks) {
                per_task[sm.target as usize].push(sm);
            }
            for (t, sms) in per_task.into_iter().enumerate() {
                if sms.is_empty() {
                    continue;
                }
                if heavy_targets.contains(&(t as u32)) {
                    // Pre-count locally and ship a kmerlist, as the heavy path does.
                    let mut kmers: Vec<Kmer1> = Vec::new();
                    for sm in &sms {
                        for (km, _) in sm.canonical_kmers_with_pos::<Kmer1>(k) {
                            kmers.push(km);
                        }
                    }
                    kmers.sort_unstable();
                    let list = count_sorted_runs(&kmers, |km| *km);
                    write_block(segment, t as u32, &TaskPayload::KmerList(list));
                } else {
                    write_block::<Kmer1>(segment, t as u32, &TaskPayload::Supermers(sms));
                }
            }
        }
        // A structurally empty supermer block: a task that exists but holds nothing.
        let _ = SupermerBlockWriter::new(segment, tasks, 0);
    }
    segments
}

#[test]
fn stage3_parallel_is_byte_identical_to_sequential_reference() {
    use hysortk_core::stage3::{count_blocks_reference, count_received_parallel, CountParams};
    use hysortk_task::WorkerPool;

    let mut rng = StdRng::seed_from_u64(114);
    for case in 0..10 {
        let tie_heavy = case % 3 == 2;
        let k = [15usize, 21, 31][case % 3];
        let sources = rng.gen_range(1..5usize);
        let tasks = rng.gen_range(1..13u32);
        let segments = stage3_segments(&mut rng, sources, tasks, k, tie_heavy);
        for with_extension in [false, true] {
            let (min_count, max_count) = if case % 2 == 0 {
                (1, 1_000_000)
            } else {
                (2, 50)
            };
            let sorter = [
                hysortk_perfmodel::SortAlgorithm::Raduls,
                hysortk_perfmodel::SortAlgorithm::Paradis,
            ][case % 2];
            let params =
                CountParams::for_kmer::<Kmer1>(k, sorter, min_count, max_count, with_extension);
            let reference =
                count_blocks_reference::<Kmer1, _>(segments.iter().map(Vec::as_slice), k, &params)
                    .expect("well-formed stream");
            for workers in [1usize, 2, 7] {
                let pool = WorkerPool::new(workers, 1);
                let (parallel, _sizes) = count_received_parallel::<Kmer1, _>(
                    segments.iter().map(Vec::as_slice),
                    k,
                    &params,
                    &pool,
                )
                .expect("well-formed stream");
                assert_eq!(
                    parallel, reference,
                    "case {case}, workers {workers}, ext {with_extension}"
                );
            }
        }
    }
}

#[test]
fn stage3_handles_kmerlist_only_and_empty_inputs() {
    use hysortk_core::stage3::{count_blocks_reference, count_received_parallel, CountParams};
    use hysortk_core::wire::{write_block, TaskPayload};
    use hysortk_task::WorkerPool;

    let params = CountParams::for_kmer::<Kmer1>(
        15,
        hysortk_perfmodel::SortAlgorithm::Raduls,
        1,
        1_000_000,
        false,
    );

    // Entirely empty receive segments.
    let empty: Vec<&[u8]> = vec![&[], &[], &[]];
    let pool = WorkerPool::new(2, 1);
    let (merged, sizes) =
        count_received_parallel::<Kmer1, _>(empty.iter().copied(), 15, &params, &pool).unwrap();
    assert!(merged.counts.is_empty() && sizes.is_empty());

    // Kmerlist-only tasks: duplicates across sources must sum (k-mers stay disjoint
    // across tasks, as the minimizer partition guarantees in the real pipeline).
    let km_a = Kmer1::from_ascii(b"ACGTACGTACGTACG").canonical(15);
    let km_b = Kmer1::from_ascii(b"TTTTGGGGCCCCAAA").canonical(15);
    let km_c = Kmer1::from_ascii(b"AAACCCGGGTTTACG").canonical(15);
    let mut seg0 = Vec::new();
    let mut seg1 = Vec::new();
    write_block(
        &mut seg0,
        4,
        &TaskPayload::KmerList(vec![(km_a, 3), (km_b, 1)]),
    );
    write_block(
        &mut seg1,
        4,
        &TaskPayload::KmerList(vec![(km_a, 2), (km_b, 7)]),
    );
    write_block(&mut seg1, 9, &TaskPayload::KmerList(vec![(km_c, 4)]));
    let segments: Vec<&[u8]> = vec![&seg0, &seg1];
    let reference =
        count_blocks_reference::<Kmer1, _>(segments.iter().copied(), 15, &params).unwrap();
    for workers in [1usize, 2, 7] {
        let pool = WorkerPool::new(workers, 1);
        let (parallel, _) =
            count_received_parallel::<Kmer1, _>(segments.iter().copied(), 15, &params, &pool)
                .unwrap();
        assert_eq!(parallel, reference, "workers {workers}");
    }
    let mut expected = vec![(km_a, 5u64), (km_b, 8u64), (km_c, 4u64)];
    expected.sort_unstable_by_key(|e| e.0);
    assert_eq!(reference.counts, expected);
    assert_eq!(reference.precounted_records, 5);
}
