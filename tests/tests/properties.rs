//! Randomised property tests on the core data structures and invariants.
//!
//! The build environment is offline, so instead of `proptest` these use a seeded
//! [`StdRng`] case loop: every property runs over a few dozen random cases whose seeds
//! are fixed, making failures reproducible while still sweeping a wide input space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hysortk_dna::{DnaSeq, Extension, Kmer1, Kmer2, ReadSet};
use hysortk_sort::{
    paradis_sort, paradis_sort_by, raduls_sort, raduls_sort_by, sample_sort_by_key,
};
use hysortk_supermer::codec::{decode_extensions, encode_extensions};
use hysortk_supermer::minimizer::{minimizers_deque, minimizers_naive};
use hysortk_supermer::mmer::{MmerScorer, ScoreFunction};
use hysortk_supermer::streaming::{for_each_supermer, SupermerScratch};
use hysortk_supermer::supermer::{build_supermers, Supermer};

/// A random DNA string over ACGT of length `0..max_len`.
fn dna(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

fn dna_exact(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

// ---------------- k-mer packing ------------------------------------------------------

#[test]
fn kmer_pack_unpack_round_trips() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..64 {
        let k = rng.gen_range(1..=32usize);
        let seq = dna_exact(&mut rng, k);
        let km = Kmer1::from_ascii(&seq);
        assert_eq!(km.to_string_k(k).as_bytes(), &seq[..]);
    }
}

#[test]
fn kmer2_reverse_complement_is_an_involution() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..64 {
        let k = rng.gen_range(1..=64usize);
        let km = Kmer2::from_ascii(&dna_exact(&mut rng, k));
        assert_eq!(km.reverse_complement(k).reverse_complement(k), km);
    }
}

#[test]
fn kmer_ordering_matches_string_ordering() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..64 {
        let len = rng.gen_range(1..21usize);
        let a = dna_exact(&mut rng, len);
        let b = dna_exact(&mut rng, len);
        let ka = Kmer1::from_ascii(&a);
        let kb = Kmer1::from_ascii(&b);
        assert_eq!(ka.cmp(&kb), a.cmp(&b), "{:?} vs {:?}", a, b);
    }
}

#[test]
fn canonical_kmer_is_strand_invariant() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..64 {
        let k = rng.gen_range(1..=32usize);
        let km = Kmer1::from_ascii(&dna_exact(&mut rng, k));
        let rc = km.reverse_complement(k);
        assert_eq!(km.canonical(k), rc.canonical(k));
    }
}

// ---------------- packed sequences ---------------------------------------------------

#[test]
fn dnaseq_round_trips_and_counts_kmers() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..64 {
        let seq = dna(&mut rng, 500);
        let k = rng.gen_range(1..40usize);
        let packed = DnaSeq::from_ascii(&seq);
        assert_eq!(packed.to_ascii(), seq);
        let expected = if seq.len() >= k { seq.len() - k + 1 } else { 0 };
        assert_eq!(packed.num_kmers(k), expected);
    }
}

// ---------------- sorting ------------------------------------------------------------

#[test]
fn radix_sorts_agree_with_std_sort() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..32 {
        let n = rng.gen_range(0..3000usize);
        let v: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut a = v.clone();
        paradis_sort_by(&mut a, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(a, expected);
        let mut b = v;
        raduls_sort_by(&mut b, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        assert_eq!(b, expected);
    }
}

#[test]
fn monomorphized_kernels_match_closure_paths_on_u64_records() {
    // The RadixKey kernels must produce exactly the ordering of the closure-based
    // paths they replace — including stability for the RADULS pair (payloads of equal
    // keys keep their relative order).
    let mut rng = StdRng::seed_from_u64(107);
    for round in 0..24 {
        let n = rng.gen_range(0..40_000usize);
        let few_keys = round % 2 == 0;
        let v: Vec<(u64, u32)> = (0..n as u32)
            .map(|i| {
                let key = if few_keys {
                    rng.gen_range(0..97u64)
                } else {
                    rng.gen()
                };
                (key, i)
            })
            .collect();

        let mut kernel = v.clone();
        raduls_sort(&mut kernel);
        let mut closure = v.clone();
        raduls_sort_by(&mut closure, 8, |x, l| (x.0 >> (8 * (7 - l))) as u8);
        assert_eq!(kernel, closure, "raduls kernel diverged (n = {n})");

        let mut kernel = v.clone();
        paradis_sort(&mut kernel);
        let mut closure = v.clone();
        paradis_sort_by(&mut closure, 8, |x, l| (x.0 >> (8 * (7 - l))) as u8);
        // PARADIS is not stable; compare the grouping, not the payload order.
        kernel.sort_unstable();
        closure.sort_unstable();
        assert_eq!(kernel, closure, "paradis kernel diverged (n = {n})");
    }
}

#[test]
fn monomorphized_kernels_match_closure_paths_on_u128_records() {
    let mut rng = StdRng::seed_from_u64(108);
    let digit = |x: &(u128, u32), l: usize| (x.0 >> (8 * (15 - l))) as u8;
    for _ in 0..12 {
        let n = rng.gen_range(0..30_000usize);
        // Mask some keys down so whole levels go trivial across the word boundary.
        let mask = if rng.gen_bool(0.5) {
            u128::MAX
        } else {
            0xFFFF_FFFF_FFFF_FFFF_FFFF
        }; // 80 bits
        let v: Vec<(u128, u32)> = (0..n as u32)
            .map(|i| (rng.gen::<u128>() & mask, i))
            .collect();

        let mut kernel = v.clone();
        raduls_sort(&mut kernel);
        let mut closure = v.clone();
        raduls_sort_by(&mut closure, 16, digit);
        assert_eq!(kernel, closure, "raduls kernel diverged (n = {n})");

        let mut kernel = v.clone();
        paradis_sort(&mut kernel);
        let mut expected = v.clone();
        expected.sort_unstable();
        kernel.sort_unstable();
        assert_eq!(kernel, expected, "paradis kernel diverged (n = {n})");
    }
}

#[test]
fn sample_sort_agrees_with_std_sort() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..32 {
        let n = rng.gen_range(0..3000usize);
        let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        sample_sort_by_key(&mut v, 4, |x| *x);
        assert_eq!(v, expected);
    }
}

// ---------------- flat exchange ------------------------------------------------------

#[test]
fn flat_exchange_round_trips_against_the_nested_path() {
    // Random irregular send matrices: the flat-buffer exchange must deliver exactly
    // the bytes the nested-vector path delivers, rank for rank.
    use hysortk_dmem::Cluster;
    for seed in 0..6u64 {
        let p = 2 + (seed as usize % 4);
        let run = Cluster::new(p).run(|ctx| {
            let mut rng = StdRng::seed_from_u64(seed * 100 + ctx.rank() as u64);
            let nested: Vec<Vec<u8>> = (0..ctx.size())
                .map(|_| {
                    let len = rng.gen_range(0..200usize);
                    (0..len).map(|_| rng.gen()).collect()
                })
                .collect();
            let counts: Vec<usize> = nested.iter().map(Vec::len).collect();
            let flat: Vec<u8> = nested.iter().flatten().copied().collect();
            let from_nested = ctx.alltoallv(nested, "nested");
            let from_flat = ctx.alltoallv_flat(flat, &counts, "flat");
            (0..ctx.size()).all(|src| from_nested[src].as_slice() == from_flat.from_rank(src))
        });
        assert!(
            run.results.into_iter().all(|ok| ok),
            "mismatch for seed {seed}"
        );
    }
}

// ---------------- minimizers and supermers -------------------------------------------

#[test]
fn deque_minimizers_equal_naive_minimizers() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..48 {
        let seq = dna(&mut rng, 400);
        let m = rng.gen_range(3..16usize);
        let window = rng.gen_range(0..30usize);
        let k = m + window;
        let packed = DnaSeq::from_ascii(&seq);
        let scorer = MmerScorer::new(m, ScoreFunction::Hash { seed: 17 });
        assert_eq!(
            minimizers_deque(&packed, k, &scorer),
            minimizers_naive(&packed, k, &scorer),
            "m = {m}, k = {k}"
        );
    }
}

#[test]
fn supermers_partition_the_kmers_of_a_read() {
    let mut rng = StdRng::seed_from_u64(111);
    let mut checked = 0;
    while checked < 32 {
        let seq = dna(&mut rng, 600);
        if seq.len() < 31 {
            continue;
        }
        checked += 1;
        let targets = rng.gen_range(1..64u32);
        let read = hysortk_dna::Read::from_ascii(0, "p", &seq);
        let scorer = MmerScorer::new(11, ScoreFunction::Hash { seed: 3 });
        let supermers = build_supermers(&read, 31, &scorer, targets);
        let total: usize = supermers.iter().map(|s| s.num_kmers(31)).sum();
        assert_eq!(total, read.seq.num_kmers(31));
        let mut from_supermers: Vec<Kmer1> = supermers
            .iter()
            .flat_map(|s| {
                s.canonical_kmers_with_pos::<Kmer1>(31)
                    .into_iter()
                    .map(|(km, _)| km)
            })
            .collect();
        let mut direct: Vec<Kmer1> = read.seq.canonical_kmers(31).collect();
        from_supermers.sort();
        direct.sort();
        assert_eq!(from_supermers, direct);
    }
}

#[test]
fn streaming_extractor_is_byte_identical_to_build_supermers() {
    // The fused streaming pass (ring-buffer deque, span callbacks, word-level
    // subrange copies) must reproduce the vec-based reference exactly: same read ids,
    // same offsets, same packed bases, same targets — over random k/m/targets,
    // including reads shorter than k and m == k windows.
    let mut rng = StdRng::seed_from_u64(112);
    let mut scratch = SupermerScratch::new();
    for trial in 0..48 {
        let seq = dna(&mut rng, 500);
        let m = rng.gen_range(1..=16usize);
        let k = m + rng.gen_range(0..30usize);
        let targets = rng.gen_range(1..64u32);
        let read = hysortk_dna::Read::from_ascii(trial, "s", &seq);
        let scorer = MmerScorer::new(m, ScoreFunction::Hash { seed: 17 });

        let mut streamed: Vec<Supermer> = Vec::new();
        for_each_supermer(&read.seq, k, &scorer, targets, &mut scratch, |span| {
            streamed.push(Supermer {
                read_id: read.id,
                start: span.start,
                seq: read.seq.subseq(span.start as usize, span.len()),
                target: span.target,
            });
        });
        assert_eq!(
            streamed,
            build_supermers(&read, k, &scorer, targets),
            "trial={trial} k={k} m={m} targets={targets}"
        );
    }
}

// ---------------- extension codec ----------------------------------------------------

#[test]
fn extension_codec_round_trips() {
    let mut rng = StdRng::seed_from_u64(112);
    for _ in 0..64 {
        let n = rng.gen_range(0..500usize);
        let records: Vec<Extension> = (0..n)
            .map(|_| Extension::new(rng.gen(), rng.gen()))
            .collect();
        let encoded = encode_extensions(&records);
        assert_eq!(decode_extensions(&encoded), Some(records.clone()));
        // Lossless and never larger than ~9/8 of the raw encoding.
        assert!(encoded.wire_bytes() <= records.len() * 9);
    }
}

// ---------------- counting invariants ------------------------------------------------

#[test]
fn hysortk_counts_match_reference_on_arbitrary_reads() {
    let mut rng = StdRng::seed_from_u64(113);
    for _ in 0..16 {
        let num_reads = rng.gen_range(1..12usize);
        let seqs: Vec<Vec<u8>> = (0..num_reads).map(|_| dna(&mut rng, 200)).collect();
        let k = rng.gen_range(5..24usize);
        let ranks = rng.gen_range(1..5usize);
        let reads = ReadSet::from_ascii_reads(&seqs);
        let mut cfg = hysortk_core::HySortKConfig::small(k, (k / 2).max(3), ranks);
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        let result = hysortk_core::count_kmers::<Kmer1>(&reads, &cfg);
        let expected = hysortk_core::reference_counts_bounded::<Kmer1>(&reads, k, 1, 1_000_000);
        assert_eq!(result.counts, expected, "k = {k}, ranks = {ranks}");
        assert_eq!(result.report.distinct_kmers, result.histogram.distinct());
    }
}
