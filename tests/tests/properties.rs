//! Property-based tests (proptest) on the core data structures and invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use hysortk_dna::{DnaSeq, Extension, Kmer1, Kmer2, ReadSet};
use hysortk_sort::{paradis_sort_by, raduls_sort_by, sample_sort_by_key};
use hysortk_supermer::codec::{decode_extensions, encode_extensions};
use hysortk_supermer::minimizer::{minimizers_deque, minimizers_naive};
use hysortk_supermer::mmer::{MmerScorer, ScoreFunction};
use hysortk_supermer::supermer::build_supermers;

/// Strategy producing DNA strings over ACGT.
fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- k-mer packing --------------------------------------------------

    #[test]
    fn kmer_pack_unpack_round_trips(seq in dna(32).prop_filter("non-empty", |s| !s.is_empty())) {
        let k = seq.len();
        let km = Kmer1::from_ascii(&seq);
        let rendered = km.to_string_k(k);
        prop_assert_eq!(rendered.as_bytes(), &seq[..]);
    }

    #[test]
    fn kmer2_reverse_complement_is_an_involution(seq in dna(64).prop_filter("k>=1", |s| !s.is_empty())) {
        let k = seq.len();
        let km = Kmer2::from_ascii(&seq);
        prop_assert_eq!(km.reverse_complement(k).reverse_complement(k), km);
    }

    #[test]
    fn kmer_ordering_matches_string_ordering(
        (a, b) in (1usize..21).prop_flat_map(|len| (
            vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], len),
            vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], len),
        ))
    ) {
        let ka = Kmer1::from_ascii(&a);
        let kb = Kmer1::from_ascii(&b);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    #[test]
    fn canonical_kmer_is_strand_invariant(seq in dna(32).prop_filter("non-empty", |s| !s.is_empty())) {
        let k = seq.len();
        let km = Kmer1::from_ascii(&seq);
        let rc = km.reverse_complement(k);
        prop_assert_eq!(km.canonical(k), rc.canonical(k));
    }

    // ---------------- packed sequences ------------------------------------------------

    #[test]
    fn dnaseq_round_trips_and_counts_kmers(seq in dna(500), k in 1usize..40) {
        let packed = DnaSeq::from_ascii(&seq);
        prop_assert_eq!(packed.to_ascii(), seq.clone());
        let expected = if seq.len() >= k { seq.len() - k + 1 } else { 0 };
        prop_assert_eq!(packed.num_kmers(k), expected);
    }

    // ---------------- sorting ----------------------------------------------------------

    #[test]
    fn radix_sorts_agree_with_std_sort(mut v in vec(any::<u64>(), 0..3000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut a = v.clone();
        paradis_sort_by(&mut a, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        prop_assert_eq!(&a, &expected);
        raduls_sort_by(&mut v, 8, |x, l| (x >> (8 * (7 - l))) as u8);
        prop_assert_eq!(&v, &expected);
    }

    #[test]
    fn sample_sort_agrees_with_std_sort(mut v in vec(any::<u32>(), 0..3000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        sample_sort_by_key(&mut v, 4, |x| *x);
        prop_assert_eq!(v, expected);
    }

    // ---------------- minimizers and supermers -----------------------------------------

    #[test]
    fn deque_minimizers_equal_naive_minimizers(seq in dna(400), m in 3usize..16, window in 0usize..30) {
        let k = m + window;
        let packed = DnaSeq::from_ascii(&seq);
        let scorer = MmerScorer::new(m, ScoreFunction::Hash { seed: 17 });
        prop_assert_eq!(
            minimizers_deque(&packed, k, &scorer),
            minimizers_naive(&packed, k, &scorer)
        );
    }

    #[test]
    fn supermers_partition_the_kmers_of_a_read(seq in dna(600), targets in 1u32..64) {
        prop_assume!(seq.len() >= 31);
        let read = hysortk_dna::Read::from_ascii(0, "p", &seq);
        let scorer = MmerScorer::new(11, ScoreFunction::Hash { seed: 3 });
        let supermers = build_supermers(&read, 31, &scorer, targets);
        let total: usize = supermers.iter().map(|s| s.num_kmers(31)).sum();
        prop_assert_eq!(total, read.seq.num_kmers(31));
        let mut from_supermers: Vec<Kmer1> = supermers
            .iter()
            .flat_map(|s| s.canonical_kmers_with_pos::<Kmer1>(31).into_iter().map(|(km, _)| km))
            .collect();
        let mut direct: Vec<Kmer1> = read.seq.canonical_kmers(31).collect();
        from_supermers.sort();
        direct.sort();
        prop_assert_eq!(from_supermers, direct);
    }

    // ---------------- extension codec ---------------------------------------------------

    #[test]
    fn extension_codec_round_trips(records in vec((any::<u32>(), any::<u32>()), 0..500)) {
        let records: Vec<Extension> =
            records.into_iter().map(|(r, p)| Extension::new(r, p)).collect();
        let encoded = encode_extensions(&records);
        prop_assert_eq!(decode_extensions(&encoded), Some(records.clone()));
        // Lossless and never larger than ~9/8 of the raw encoding.
        prop_assert!(encoded.wire_bytes() <= records.len() * 9);
    }

    // ---------------- counting invariants -----------------------------------------------

    #[test]
    fn hysortk_counts_match_reference_on_arbitrary_reads(
        seqs in vec(dna(200), 1..12),
        k in 5usize..24,
        ranks in 1usize..5,
    ) {
        let reads = ReadSet::from_ascii_reads(&seqs);
        let mut cfg = hysortk_core::HySortKConfig::small(k, (k / 2).max(3), ranks);
        cfg.min_count = 1;
        cfg.max_count = 1_000_000;
        let result = hysortk_core::count_kmers::<Kmer1>(&reads, &cfg);
        let expected = hysortk_core::reference_counts_bounded::<Kmer1>(&reads, k, 1, 1_000_000);
        prop_assert_eq!(result.counts, expected);
        prop_assert_eq!(result.report.distinct_kmers, result.histogram.distinct());
    }
}
