//! End-to-end ingestion tests: real FASTA/FASTQ files on disk, streamed through the
//! chunked rank-sharded readers into the full pipeline, pinned byte-identical to the
//! in-memory `ReadSet` entry point across rank counts and overlap modes.

use std::path::PathBuf;

use hysortk_core::ingest::{count_kmers_from_files, count_kmers_from_files_with};
use hysortk_core::{count_kmers, reference_counts_bounded, HySortKConfig};
use hysortk_datasets::DatasetPreset;
use hysortk_dna::io::{write_fastq_file, IngestOptions};
use hysortk_dna::{fasta, Kmer1, ReadSet};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hysortk_e2e_{}_{tag}", std::process::id()))
}

fn config(k: usize, ranks: usize, overlap: bool) -> HySortKConfig {
    let mut cfg = HySortKConfig::small(k, HySortKConfig::recommended_m(k), ranks);
    cfg.min_count = 1;
    cfg.max_count = 1_000_000;
    cfg.overlap = overlap;
    cfg
}

/// The golden grid of the issue: a generated dataset written to FASTA **and** FASTQ,
/// ingested on {1, 2, 7} ranks with overlap on and off, counts asserted identical to
/// the in-memory pipeline (and the in-memory pipeline to the oracle).
#[test]
fn file_fed_counts_are_identical_to_in_memory_across_ranks_and_overlap_modes() {
    let data = DatasetPreset::ABaumannii.generate(1.2e-4, 4242);
    let fa = tmp_path("grid.fa");
    let fq = tmp_path("grid.fq");
    fasta::write_fasta_file(&fa, &data.reads, 61).unwrap();
    write_fastq_file(&fq, &data.reads).unwrap();

    let k = 21;
    let expected = reference_counts_bounded::<Kmer1>(&data.reads, k, 1, 1_000_000);
    for ranks in [1usize, 2, 7] {
        for overlap in [false, true] {
            let mut cfg = config(k, ranks, overlap);
            cfg.data_scale = data.data_scale;
            let context = format!("ranks={ranks} overlap={overlap}");

            let in_memory = count_kmers::<Kmer1>(&data.reads, &cfg);
            assert_eq!(in_memory.counts, expected, "in-memory vs oracle: {context}");

            let from_fasta = count_kmers_from_files::<Kmer1, _>(&[&fa], &cfg).unwrap();
            assert_eq!(
                from_fasta.counts, in_memory.counts,
                "FASTA-fed vs in-memory: {context}"
            );
            assert_eq!(
                from_fasta.histogram, in_memory.histogram,
                "FASTA-fed histogram: {context}"
            );

            let from_fastq = count_kmers_from_files::<Kmer1, _>(&[&fq], &cfg).unwrap();
            assert_eq!(
                from_fastq.counts, in_memory.counts,
                "FASTQ-fed vs in-memory: {context}"
            );
            assert_eq!(
                from_fastq.histogram, in_memory.histogram,
                "FASTQ-fed histogram: {context}"
            );
        }
    }
    std::fs::remove_file(&fa).ok();
    std::fs::remove_file(&fq).ok();
}

/// Multi-file input: the dataset split into three files (two FASTA, one FASTQ) must
/// count exactly like the single-file and in-memory runs, for shard boundaries both
/// inside and across the files.
#[test]
fn multi_file_mixed_format_input_counts_like_the_concatenation() {
    let data = DatasetPreset::ABaumannii.generate(1.0e-4, 99);
    let third = data.reads.len() / 3;
    let parts: [ReadSet; 3] = [
        data.reads.iter().take(third).cloned().collect(),
        data.reads.iter().skip(third).take(third).cloned().collect(),
        data.reads.iter().skip(2 * third).cloned().collect(),
    ];
    let paths = [
        tmp_path("part0.fa"),
        tmp_path("part1.fq"),
        tmp_path("part2.fa"),
    ];
    fasta::write_fasta_file(&paths[0], &parts[0], 70).unwrap();
    write_fastq_file(&paths[1], &parts[1]).unwrap();
    fasta::write_fasta_file(&paths[2], &parts[2], 70).unwrap();

    let k = 17;
    for ranks in [2usize, 5] {
        let mut cfg = config(k, ranks, true);
        cfg.data_scale = data.data_scale;
        let in_memory = count_kmers::<Kmer1>(&data.reads, &cfg);
        let from_files = count_kmers_from_files::<Kmer1, _>(&paths, &cfg).unwrap();
        assert_eq!(from_files.counts, in_memory.counts, "ranks={ranks}");
        assert_eq!(from_files.histogram, in_memory.histogram, "ranks={ranks}");
    }
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}

/// Tiny ingestion blocks force every record across a block boundary; the counts must
/// not move. Bounded-memory streaming is exercised directly in `hysortk_dna::io`.
#[test]
fn block_size_never_changes_the_counts() {
    let data = DatasetPreset::ABaumannii.generate(0.8e-4, 7);
    let fa = tmp_path("blocks.fa");
    fasta::write_fasta_file(&fa, &data.reads, 80).unwrap();
    let mut cfg = config(21, 3, true);
    cfg.data_scale = data.data_scale;
    let baseline = count_kmers::<Kmer1>(&data.reads, &cfg);
    for block_bytes in [64usize, 4_096] {
        let opts = IngestOptions {
            block_bytes,
            batch_records: 7,
            min_fragment: 1,
        };
        let got = count_kmers_from_files_with::<Kmer1, _>(&[&fa], &cfg, opts).unwrap();
        assert_eq!(got.counts, baseline.counts, "block_bytes={block_bytes}");
    }
    std::fs::remove_file(&fa).ok();
}

/// The N-policy pin: ambiguous bases split reads in the ingestion path, so no k-mer
/// spanning an `N` run is ever counted — unlike the in-memory reference parser,
/// which keeps its historical map-to-`A` policy and fabricates k-mers.
#[test]
fn ambiguous_bases_split_reads_instead_of_fabricating_kmers() {
    let text = ">r1\nACGTACGTACGTNNNNTTTTGGGGCCCC\n>r2\nAAAACCCCNGGGGTTTTACGTACGT\n>r3\nACGTACGTACGTACGT\n";
    let fa = tmp_path("npolicy.fa");
    std::fs::write(&fa, text).unwrap();

    // What a correct counter sees: the fragments between the N runs.
    let fragments = ReadSet::from_ascii_reads(&[
        b"ACGTACGTACGT".as_slice(),
        b"TTTTGGGGCCCC".as_slice(),
        b"AAAACCCC".as_slice(),
        b"GGGGTTTTACGTACGT".as_slice(),
        b"ACGTACGTACGTACGT".as_slice(),
    ]);

    let k = 7;
    let cfg = config(k, 2, true);
    let expected = reference_counts_bounded::<Kmer1>(&fragments, k, 1, 1_000_000);
    let got = count_kmers_from_files::<Kmer1, _>(&[&fa], &cfg).unwrap();
    assert_eq!(
        got.counts, expected,
        "file-fed counts must match the split fragments"
    );

    // The in-memory reference parser maps N→A instead — demonstrably different on
    // this input (it fabricates k-mers across the N runs).
    let mapped = fasta::parse_fasta_str(text);
    let mapped_counts = reference_counts_bounded::<Kmer1>(&mapped, k, 1, 1_000_000);
    assert_ne!(
        got.counts, mapped_counts,
        "the N runs must actually change the spectrum for this pin to mean anything"
    );
    std::fs::remove_file(&fa).ok();
}

/// The CLI smoke contract, tested from the library so tier-1 covers it: counting the
/// bundled `tests/data/smoke.fa` with the smoke parameters must reproduce the
/// checked-in golden histogram byte for byte (CI additionally runs the actual binary
/// and diffs its `--out` file against the same golden).
#[test]
fn bundled_smoke_fasta_reproduces_the_checked_in_golden_histogram() {
    let data_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data");
    let smoke = data_dir.join("smoke.fa");
    let golden = std::fs::read_to_string(data_dir.join("smoke.hist.tsv")).unwrap();

    // Mirror the CLI defaults used by the CI smoke step:
    // `hysortk count tests/data/smoke.fa -k 21 --ranks 4 --min-count 2`.
    let mut cfg = HySortKConfig::small(21, HySortKConfig::recommended_m(21), 4);
    cfg.min_count = 2;
    cfg.max_count = 50;
    let result = count_kmers_from_files::<Kmer1, _>(&[&smoke], &cfg).unwrap();
    assert_eq!(result.histogram.to_tsv(), golden);
    assert!(result.report.distinct_kmers > 0);
}
