//! Integration-test crate for the HySortK reproduction. All content lives in `tests/`.
